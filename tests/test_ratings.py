"""Tests for the RatingMatrix data structure and shards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ratings import RatingMatrix, train_test_split
from repro.errors import DataError
from repro.rng import RngFactory


def make_matrix():
    #     c0   c1   c2
    # r0  1.0       3.0
    # r1       2.0
    # r2  4.0  5.0
    return RatingMatrix(
        3, 3,
        rows=np.array([0, 0, 1, 2, 2]),
        cols=np.array([0, 2, 1, 0, 1]),
        vals=np.array([1.0, 3.0, 2.0, 4.0, 5.0]),
    )


class TestConstruction:
    def test_basic_properties(self):
        matrix = make_matrix()
        assert matrix.shape == (3, 3)
        assert matrix.nnz == 5
        assert 0 < matrix.density < 1

    def test_sorted_canonical_order(self):
        matrix = RatingMatrix(
            2, 2,
            rows=np.array([1, 0]),
            cols=np.array([0, 1]),
            vals=np.array([9.0, 8.0]),
        )
        assert matrix.rows.tolist() == [0, 1]
        assert matrix.vals.tolist() == [8.0, 9.0]

    def test_rejects_duplicates(self):
        with pytest.raises(DataError, match="duplicate"):
            RatingMatrix(
                2, 2,
                rows=np.array([0, 0]),
                cols=np.array([1, 1]),
                vals=np.array([1.0, 2.0]),
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            RatingMatrix(2, 2, np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(DataError):
            RatingMatrix(2, 2, np.array([0]), np.array([5]), np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            RatingMatrix(2, 2, np.array([]), np.array([]), np.array([]))

    def test_rejects_nonfinite(self):
        with pytest.raises(DataError):
            RatingMatrix(
                2, 2, np.array([0]), np.array([0]), np.array([np.nan])
            )

    def test_rejects_bad_shape(self):
        with pytest.raises(DataError):
            RatingMatrix(0, 2, np.array([0]), np.array([0]), np.array([1.0]))

    def test_arrays_read_only(self):
        matrix = make_matrix()
        with pytest.raises(ValueError):
            matrix.vals[0] = 99.0

    def test_equality(self):
        assert make_matrix() == make_matrix()
        other = RatingMatrix(3, 3, np.array([0]), np.array([0]), np.array([7.0]))
        assert make_matrix() != other


class TestViews:
    def test_items_of_user(self):
        matrix = make_matrix()
        items, vals = matrix.items_of_user(0)
        assert items.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 3.0]

    def test_users_of_item(self):
        matrix = make_matrix()
        users, vals = matrix.users_of_item(1)
        assert users.tolist() == [1, 2]
        assert vals.tolist() == [2.0, 5.0]

    def test_empty_row_allowed_after_select(self):
        matrix = make_matrix()
        items, vals = matrix.items_of_user(1)
        assert items.tolist() == [1]

    def test_counts(self):
        matrix = make_matrix()
        assert matrix.row_counts().tolist() == [2, 1, 2]
        assert matrix.col_counts().tolist() == [2, 2, 1]

    def test_counts_sum_to_nnz(self):
        matrix = make_matrix()
        assert matrix.row_counts().sum() == matrix.nnz
        assert matrix.col_counts().sum() == matrix.nnz


class TestDenseRoundTrip:
    def test_from_dense_to_dense(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        matrix = RatingMatrix.from_dense(dense)
        assert matrix.nnz == 2
        assert np.array_equal(matrix.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(DataError):
            RatingMatrix.from_dense(np.array([1.0, 2.0]))


class TestSelect:
    def test_select_subset(self):
        matrix = make_matrix()
        mask = np.zeros(matrix.nnz, dtype=bool)
        mask[:2] = True
        subset = matrix.select(mask)
        assert subset.nnz == 2
        assert subset.shape == matrix.shape

    def test_select_empty_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError):
            matrix.select(np.zeros(matrix.nnz, dtype=bool))

    def test_select_wrong_length(self):
        matrix = make_matrix()
        with pytest.raises(DataError):
            matrix.select(np.ones(3, dtype=bool))


class TestWithAppended:
    """Delta composition: appended arrivals must be indistinguishable
    from building the combined matrix from scratch."""

    def _scratch(self, matrix, rows, cols, vals, n_rows=None, n_cols=None):
        all_rows = np.concatenate([matrix.rows, np.asarray(rows)])
        all_cols = np.concatenate([matrix.cols, np.asarray(cols)])
        all_vals = np.concatenate([matrix.vals, np.asarray(vals)])
        if n_rows is None:
            n_rows = max(matrix.n_rows, int(all_rows.max()) + 1)
        if n_cols is None:
            n_cols = max(matrix.n_cols, int(all_cols.max()) + 1)
        return RatingMatrix(n_rows, n_cols, all_rows, all_cols, all_vals)

    def _assert_views_equal(self, a, b):
        assert a.shape == b.shape and a.nnz == b.nnz
        assert a == b  # canonical COO triplets
        for i in range(a.n_rows):  # CSR view
            items_a, vals_a = a.items_of_user(i)
            items_b, vals_b = b.items_of_user(i)
            assert np.array_equal(items_a, items_b)
            assert np.array_equal(vals_a, vals_b)
        for j in range(a.n_cols):  # CSC view
            users_a, vals_a = a.users_of_item(j)
            users_b, vals_b = b.users_of_item(j)
            assert np.array_equal(users_a, users_b)
            assert np.array_equal(vals_a, vals_b)

    def test_append_within_shape(self):
        matrix = make_matrix()
        rows, cols, vals = [1, 2], [0, 2], [7.0, 8.0]
        combined = matrix.with_appended(rows, cols, vals)
        assert combined.shape == matrix.shape
        self._assert_views_equal(
            combined, self._scratch(matrix, rows, cols, vals)
        )

    def test_append_brand_new_row_and_col(self):
        matrix = make_matrix()
        # User 4 (skipping 3) and item 3 did not exist before.
        rows, cols, vals = [4, 0], [1, 3], [2.5, 9.0]
        combined = matrix.with_appended(rows, cols, vals)
        assert combined.shape == (5, 4)
        self._assert_views_equal(
            combined, self._scratch(matrix, rows, cols, vals)
        )
        # The never-rated row 3 exists with an empty CSR slice.
        items, vals_ = combined.items_of_user(3)
        assert items.size == 0 and vals_.size == 0

    def test_append_empty_is_identity(self):
        matrix = make_matrix()
        combined = matrix.with_appended([], [], [])
        self._assert_views_equal(combined, matrix)

    def test_explicit_shape_grows_further(self):
        matrix = make_matrix()
        combined = matrix.with_appended([1], [2], [1.5], n_rows=10, n_cols=7)
        assert combined.shape == (10, 7)
        assert combined.col_counts().size == 7
        assert combined.row_counts().size == 10

    def test_explicit_shape_too_small_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError, match="n_rows"):
            matrix.with_appended([5], [0], [1.0], n_rows=4)
        with pytest.raises(DataError, match="n_cols"):
            matrix.with_appended([0], [5], [1.0], n_cols=4)

    def test_duplicate_against_existing_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError, match="duplicate"):
            matrix.with_appended([0], [0], [9.0])

    def test_duplicate_within_arrivals_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError, match="duplicate"):
            matrix.with_appended([1, 1], [2, 2], [1.0, 2.0])

    def test_negative_indices_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError):
            matrix.with_appended([-1], [0], [1.0])
        with pytest.raises(DataError):
            matrix.with_appended([0], [-1], [1.0])

    def test_randomized_composition_matches_scratch(self):
        """Random split of a random matrix: base + delta == whole."""
        rng = RngFactory(7).stream("append")
        n_rows, n_cols = 12, 9
        dense = rng.random((n_rows, n_cols))
        dense[dense < 0.6] = 0.0
        whole = RatingMatrix.from_dense(dense)
        keep = rng.random(whole.nnz) < 0.5
        keep[0] = True  # base must be non-empty
        base_rows = whole.rows[keep]
        base_cols = whole.cols[keep]
        base = RatingMatrix(
            n_rows, n_cols, base_rows, base_cols, whole.vals[keep]
        )
        combined = base.with_appended(
            whole.rows[~keep], whole.cols[~keep], whole.vals[~keep]
        )
        self._assert_views_equal(combined, whole)


class TestShards:
    def test_shard_partition(self):
        matrix = make_matrix()
        partition = [np.array([0, 1]), np.array([2])]
        shards = matrix.shard_by_rows(partition)
        assert len(shards) == 2
        assert shards[0].nnz + shards[1].nnz == matrix.nnz

    def test_shard_columns(self):
        matrix = make_matrix()
        shards = matrix.shard_by_rows([np.array([0, 1]), np.array([2])])
        users, vals = shards[0].column(0)
        assert users.tolist() == [0]
        users, vals = shards[1].column(0)
        assert users.tolist() == [2]
        assert vals.tolist() == [4.0]

    def test_shard_column_nnz_consistency(self):
        matrix = make_matrix()
        shards = matrix.shard_by_rows([np.array([0, 1]), np.array([2])])
        for j in range(matrix.n_cols):
            total = sum(shard.column_nnz(j) for shard in shards)
            assert total == matrix.users_of_item(j)[0].size

    def test_shard_column_bounds_align(self):
        matrix = make_matrix()
        (shard,) = matrix.shard_by_rows([np.arange(3)])
        for j in range(matrix.n_cols):
            lo, hi = shard.column_bounds(j)
            assert hi - lo == shard.column_nnz(j)

    def test_overlapping_partition_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError, match="overlap"):
            matrix.shard_by_rows([np.array([0, 1]), np.array([1, 2])])

    def test_incomplete_partition_rejected(self):
        matrix = make_matrix()
        with pytest.raises(DataError, match="cover"):
            matrix.shard_by_rows([np.array([0]), np.array([2])])

    def test_local_rows(self):
        matrix = make_matrix()
        shards = matrix.shard_by_rows([np.array([0, 1]), np.array([2])])
        assert shards[1].local_rows().tolist() == [2]


class TestTrainTestSplit:
    def test_split_sizes(self, rng_factory=None):
        matrix = make_matrix()
        rng = RngFactory(0).stream("split")
        train, test = train_test_split(matrix, 0.4, rng)
        assert train.nnz + test.nnz == matrix.nnz
        assert test.nnz == 2

    def test_split_disjoint(self):
        matrix = make_matrix()
        rng = RngFactory(0).stream("split")
        train, test = train_test_split(matrix, 0.4, rng)
        train_pairs = set(zip(train.rows.tolist(), train.cols.tolist()))
        test_pairs = set(zip(test.rows.tolist(), test.cols.tolist()))
        assert not train_pairs & test_pairs

    def test_split_deterministic(self):
        matrix = make_matrix()
        a = train_test_split(matrix, 0.4, RngFactory(1).stream("s"))
        b = train_test_split(matrix, 0.4, RngFactory(1).stream("s"))
        assert a[0] == b[0]
        assert a[1] == b[1]

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fraction(self, fraction):
        with pytest.raises(DataError):
            train_test_split(make_matrix(), fraction, RngFactory(0).stream("s"))

    def test_degenerate_split_rejected(self):
        tiny = RatingMatrix(
            2, 2, np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0])
        )
        with pytest.raises(DataError):
            train_test_split(tiny, 0.01, RngFactory(0).stream("s"))
