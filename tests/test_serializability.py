"""Tests for the serializability checker — the paper's headline property."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.serializability import (
    FRESH,
    UpdateEvent,
    conflict_graph,
    is_serializable,
    serial_order,
)


def fresh(seq, row, col, worker=0, count=0):
    return UpdateEvent(seq=seq, worker=worker, row=row, col=col, count=count)


def stale(seq, row, col, observed, worker=0, count=0):
    return UpdateEvent(
        seq=seq, worker=worker, row=row, col=col, count=count,
        stale_read=observed,
    )


class TestConflictGraph:
    def test_independent_updates_no_edges(self):
        events = [fresh(0, 0, 0), fresh(1, 1, 1), fresh(2, 2, 2)]
        graph = conflict_graph(events)
        assert graph.number_of_edges() == 0

    def test_row_conflict_edge(self):
        events = [fresh(0, 5, 0), fresh(1, 5, 1)]
        graph = conflict_graph(events)
        assert graph.has_edge(0, 1)

    def test_col_conflict_edge(self):
        events = [fresh(0, 0, 7), fresh(1, 1, 7)]
        graph = conflict_graph(events)
        assert graph.has_edge(0, 1)

    def test_chain_on_same_pair(self):
        events = [fresh(t, 3, 3, count=t) for t in range(4)]
        graph = conflict_graph(events)
        assert all(graph.has_edge(t, t + 1) for t in range(3))

    def test_stale_read_creates_anti_dependency(self):
        # Event 1 skipped event 0's write on the shared column.
        events = [fresh(0, 0, 2), stale(1, 1, 2, observed=None)]
        graph = conflict_graph(events)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 1)

    def test_stale_read_observes_named_version(self):
        events = [
            fresh(0, 0, 2),
            fresh(1, 1, 2),
            stale(2, 3, 2, observed=0),  # saw 0's write, missed 1's
        ]
        graph = conflict_graph(events)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(2, 1)


class TestSerializability:
    def test_serial_log_is_serializable(self):
        events = [fresh(t, t % 3, t % 2, count=t) for t in range(20)]
        assert is_serializable(events)

    def test_owner_computes_interleaving_serializable(self):
        # Two workers on disjoint rows sharing columns, always fresh —
        # exactly NOMAD's discipline.
        events = [
            fresh(0, 0, 0, worker=0),
            fresh(1, 10, 1, worker=1),
            fresh(2, 1, 0, worker=0),
            fresh(3, 11, 1, worker=1),
            fresh(4, 11, 0, worker=1),
        ]
        assert is_serializable(events)

    def test_classic_hogwild_cycle_detected(self):
        # Two updates that each missed the other's column write:
        #   e2 reads c2 skipping e1; e3 reads c1 skipping e0.
        # Row edges: e0->e2 (r1) and e1->e3 (r2); anti-dependencies:
        # e2->e1 and e3->e0 — a cycle e0->e2->e1->e3->e0.
        events = [
            fresh(0, 1, 1, worker=0),
            fresh(1, 2, 2, worker=1),
            stale(2, 1, 2, observed=None, worker=0),
            stale(3, 2, 1, observed=None, worker=1),
        ]
        assert not is_serializable(events)

    def test_mild_staleness_without_cycle_ok(self):
        # One stale read alone (no opposing row edge) stays serializable.
        events = [fresh(0, 0, 5), stale(1, 1, 5, observed=None)]
        assert is_serializable(events)


class TestSerialOrder:
    def test_returns_equivalent_schedule(self):
        events = [
            fresh(0, 0, 0),
            fresh(1, 1, 1),
            fresh(2, 0, 1),
        ]
        ordered = serial_order(events)
        positions = {event.seq: idx for idx, event in enumerate(ordered)}
        # Row conflict 0 -> 2 and column conflict 1 -> 2 must be respected.
        assert positions[0] < positions[2]
        assert positions[1] < positions[2]

    def test_respects_anti_dependencies(self):
        events = [fresh(0, 0, 2), stale(1, 1, 2, observed=None)]
        ordered = serial_order(events)
        assert [event.seq for event in ordered] == [1, 0]

    def test_raises_on_cycle(self):
        events = [
            fresh(0, 1, 1),
            fresh(1, 2, 2),
            stale(2, 1, 2, observed=None),
            stale(3, 2, 1, observed=None),
        ]
        with pytest.raises(nx.NetworkXUnfeasible):
            serial_order(events)

    def test_all_events_present(self):
        events = [fresh(t, t, t % 2, count=t) for t in range(10)]
        assert {event.seq for event in serial_order(events)} == set(range(10))


class TestFreshSentinel:
    def test_default_is_fresh(self):
        assert UpdateEvent(seq=0, worker=0, row=0, col=0, count=0).stale_read == FRESH

    def test_none_means_pre_commit_observation(self):
        event = stale(1, 0, 0, observed=None)
        assert event.stale_read is None
