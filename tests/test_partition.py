"""Tests for partitioners, block grids, and the ownership ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_low_rank
from repro.errors import ConfigError, DataError, SimulationError
from repro.partition.assignments import OwnershipLedger
from repro.partition.partitioners import (
    BlockGrid,
    partition_range_blocks,
    partition_rows_equal_count,
    partition_rows_equal_ratings,
)
from repro.rng import RngFactory


@pytest.fixture
def matrix():
    spec = SyntheticSpec(n_rows=100, n_cols=40, rank=2, density=0.15)
    return make_low_rank(spec, RngFactory(3).stream("partition"))


class TestEqualCount:
    def test_covers_disjointly(self):
        sets = partition_rows_equal_count(100, 7)
        combined = np.concatenate(sets)
        assert sorted(combined.tolist()) == list(range(100))

    def test_balanced_sizes(self):
        sets = partition_rows_equal_count(100, 7)
        sizes = [s.size for s in sets]
        assert max(sizes) - min(sizes) <= 1

    def test_single_set(self):
        (only,) = partition_rows_equal_count(10, 1)
        assert only.tolist() == list(range(10))

    def test_too_many_sets(self):
        with pytest.raises(ConfigError):
            partition_rows_equal_count(3, 5)

    def test_bad_p(self):
        with pytest.raises(ConfigError):
            partition_rows_equal_count(10, 0)


class TestEqualRatings:
    def test_covers_disjointly(self, matrix):
        sets = partition_rows_equal_ratings(matrix, 4)
        combined = np.concatenate(sets)
        assert sorted(combined.tolist()) == list(range(matrix.n_rows))

    def test_rating_balance_better_than_naive_worst_case(self, matrix):
        sets = partition_rows_equal_ratings(matrix, 4)
        counts = matrix.row_counts()
        loads = [counts[s].sum() for s in sets]
        average = matrix.nnz / 4
        assert max(loads) < 1.5 * average

    def test_all_sets_nonempty(self, matrix):
        sets = partition_rows_equal_ratings(matrix, 10)
        assert all(s.size > 0 for s in sets)

    def test_p_equals_rows(self, matrix):
        sets = partition_rows_equal_ratings(matrix, matrix.n_rows)
        assert all(s.size == 1 for s in sets)


class TestBlockGrid:
    def test_cells_partition_the_ratings(self, matrix):
        grid = BlockGrid(
            matrix,
            partition_range_blocks(matrix.n_rows, 3),
            partition_range_blocks(matrix.n_cols, 4),
        )
        total = sum(
            grid.cell_nnz(r, c) for r in range(3) for c in range(4)
        )
        assert total == matrix.nnz

    def test_cell_indices_consistent(self, matrix):
        grid = BlockGrid(
            matrix,
            partition_range_blocks(matrix.n_rows, 3),
            partition_range_blocks(matrix.n_cols, 4),
        )
        indices = grid.cell_indices(1, 2)
        rows = matrix.rows[indices]
        cols = matrix.cols[indices]
        assert set(rows.tolist()) <= set(grid.row_sets[1].tolist())
        assert set(cols.tolist()) <= set(grid.col_sets[2].tolist())

    def test_nnz_matrix_matches_cells(self, matrix):
        grid = BlockGrid(
            matrix,
            partition_range_blocks(matrix.n_rows, 2),
            partition_range_blocks(matrix.n_cols, 2),
        )
        table = grid.nnz_matrix()
        assert table.sum() == matrix.nnz
        assert table[0, 1] == grid.cell_nnz(0, 1)

    def test_out_of_range_cell(self, matrix):
        grid = BlockGrid(
            matrix,
            partition_range_blocks(matrix.n_rows, 2),
            partition_range_blocks(matrix.n_cols, 2),
        )
        with pytest.raises(ConfigError):
            grid.cell_indices(2, 0)
        with pytest.raises(ConfigError):
            grid.cell_indices(0, -1)

    def test_overlapping_sets_rejected(self, matrix):
        with pytest.raises(DataError):
            BlockGrid(
                matrix,
                [np.arange(60), np.arange(50, matrix.n_rows)],
                partition_range_blocks(matrix.n_cols, 2),
            )

    def test_incomplete_sets_rejected(self, matrix):
        with pytest.raises(DataError):
            BlockGrid(
                matrix,
                [np.arange(10)],
                partition_range_blocks(matrix.n_cols, 2),
            )

    def test_empty_set_rejected(self, matrix):
        with pytest.raises(DataError):
            BlockGrid(
                matrix,
                [np.arange(matrix.n_rows), np.array([], dtype=np.int64)],
                partition_range_blocks(matrix.n_cols, 2),
            )


class TestOwnershipLedger:
    def test_acquire_release_cycle(self):
        ledger = OwnershipLedger(n_items=3, n_workers=2)
        ledger.acquire(0, 1)
        assert ledger.owner_of(0) == 1
        ledger.release(0, 1)
        assert ledger.owner_of(0) is None
        assert ledger.transfers == 1

    def test_double_acquire_rejected(self):
        ledger = OwnershipLedger(3, 2)
        ledger.acquire(0, 0)
        with pytest.raises(SimulationError, match="acquired"):
            ledger.acquire(0, 1)

    def test_foreign_release_rejected(self):
        ledger = OwnershipLedger(3, 2)
        ledger.acquire(0, 0)
        with pytest.raises(SimulationError, match="released"):
            ledger.release(0, 1)

    def test_release_in_flight_rejected(self):
        ledger = OwnershipLedger(3, 2)
        with pytest.raises(SimulationError):
            ledger.release(1, 0)

    def test_owned_items(self):
        ledger = OwnershipLedger(4, 2)
        ledger.acquire(0, 0)
        ledger.acquire(2, 0)
        ledger.acquire(1, 1)
        assert ledger.owned_items(0).tolist() == [0, 2]
        assert ledger.items_in_flight().tolist() == [3]

    def test_worker_out_of_range(self):
        ledger = OwnershipLedger(2, 2)
        with pytest.raises(SimulationError):
            ledger.acquire(0, 5)

    def test_conservation_check_passes(self):
        ledger = OwnershipLedger(2, 2)
        ledger.acquire(0, 0)
        ledger.assert_conserved()

    def test_grow_mints_in_flight_tokens(self):
        ledger = OwnershipLedger(2, 2)
        ledger.acquire(0, 0)
        ledger.grow(4)
        assert ledger.n_items == 4
        assert ledger.owner_of(0) == 0  # existing state preserved
        assert ledger.owner_of(2) is None and ledger.owner_of(3) is None
        ledger.acquire(3, 1)  # new items acquirable like any token
        assert ledger.owner_of(3) == 1
        ledger.assert_conserved()

    def test_grow_is_idempotent_at_same_size(self):
        ledger = OwnershipLedger(3, 2)
        ledger.acquire(1, 0)
        ledger.grow(3)
        assert ledger.n_items == 3
        assert ledger.owner_of(1) == 0

    def test_grow_cannot_shrink(self):
        ledger = OwnershipLedger(3, 2)
        with pytest.raises(SimulationError, match="shrink"):
            ledger.grow(2)

    def test_bad_construction(self):
        with pytest.raises(SimulationError):
            OwnershipLedger(0, 1)
        with pytest.raises(SimulationError):
            OwnershipLedger(1, 0)
