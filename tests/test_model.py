"""Tests for the CompletionModel wrapper (prediction/recommendation/persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HyperParams, RunConfig
from repro.core.nomad import NomadSimulation
from repro.errors import ConfigError, DataError
from repro.linalg.factors import FactorPair
from repro.model import FORMAT_VERSION, CompletionModel
from repro.simulator.cluster import Cluster
from repro.simulator.network import HPC_PROFILE


@pytest.fixture
def model():
    w = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    h = np.array([[2.0, 0.0], [0.0, 3.0], [1.0, 1.0], [0.5, 0.5]])
    return CompletionModel(FactorPair(w, h))


class TestPrediction:
    def test_predict_one(self, model):
        assert model.predict_one(0, 0) == 2.0
        assert model.predict_one(1, 1) == 3.0
        assert model.predict_one(2, 2) == 2.0

    def test_predict_pairs(self, model):
        out = model.predict_pairs(np.array([0, 1]), np.array([0, 1]))
        assert out.tolist() == [2.0, 3.0]

    def test_predict_pairs_shape_mismatch(self, model):
        with pytest.raises(ConfigError):
            model.predict_pairs(np.array([0, 1]), np.array([0]))

    def test_out_of_range(self, model):
        with pytest.raises(ConfigError):
            model.predict_one(5, 0)
        with pytest.raises(ConfigError):
            model.predict_one(0, 9)
        with pytest.raises(ConfigError):
            model.predict_pairs(np.array([9]), np.array([0]))

    def test_score_items_length(self, model):
        assert model.score_items(0).shape == (4,)


class TestRecommendation:
    def test_top_n_ordering(self, model):
        recs = model.recommend(0, top_n=4)
        scores = [score for _, score in recs]
        assert scores == sorted(scores, reverse=True)
        assert recs[0][0] == 0  # item 0 scores 2.0 for user 0

    def test_exclusion(self, model):
        recs = model.recommend(0, top_n=4, exclude=np.array([0]))
        assert all(item != 0 for item, _ in recs)

    def test_top_n_clamped(self, model):
        """top_n beyond the catalog clamps: exactly n_items results, best
        first, with every item present exactly once."""
        recs = model.recommend(0, top_n=100)
        assert len(recs) == model.n_items
        assert sorted(item for item, _ in recs) == list(range(model.n_items))
        scores = [score for _, score in recs]
        assert scores == sorted(scores, reverse=True)

    def test_excluding_all_items_returns_empty(self, model):
        """Masking the whole catalog yields [] — a valid 'nothing left to
        recommend' answer, not an error."""
        everything = np.arange(model.n_items)
        assert model.recommend(0, top_n=3, exclude=everything) == []

    def test_excluded_items_never_leak_into_clamped_top_n(self, model):
        """The -inf mask and top_n clamping compose: asking for more than
        remains returns only the unmasked items, best first."""
        recs = model.recommend(0, top_n=100, exclude=np.array([1, 3]))
        assert [item for item, _ in recs] != []
        assert {item for item, _ in recs} == {0, 2}
        assert all(np.isfinite(score) for _, score in recs)

    def test_exclude_accepts_duplicates_and_lists(self, model):
        recs = model.recommend(0, top_n=4, exclude=[0, 0, 2])
        assert {item for item, _ in recs} == {1, 3}

    def test_bad_args(self, model):
        with pytest.raises(ConfigError):
            model.recommend(0, top_n=0)
        with pytest.raises(ConfigError):
            model.recommend(0, exclude=np.array([99]))
        with pytest.raises(ConfigError):
            model.recommend(0, exclude=np.array([-1]))


class TestEvaluationAndPersistence:
    def test_rmse_matches_objective(self, model, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ConfigError):
            model.rmse(train)  # wrong shape

    def test_save_load_round_trip(self, model, tmp_path):
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = CompletionModel.load(path)
        assert np.array_equal(loaded.factors.w, model.factors.w)
        assert np.array_equal(loaded.factors.h, model.factors.h)

    def test_load_missing_keys(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, w=np.zeros((2, 2)))
        with pytest.raises(DataError):
            CompletionModel.load(path)

    def test_save_writes_format_version(self, model, tmp_path):
        path = tmp_path / "model.npz"
        model.save(path)
        with np.load(path) as payload:
            assert int(payload["format_version"]) == FORMAT_VERSION

    def test_load_accepts_legacy_unversioned_file(self, model, tmp_path):
        """Files written before versioning (bare w/h arrays) still load."""
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, w=model.factors.w, h=model.factors.h)
        loaded = CompletionModel.load(path)
        assert np.array_equal(loaded.factors.w, model.factors.w)
        assert np.array_equal(loaded.factors.h, model.factors.h)

    def test_load_rejects_future_format_version(self, model, tmp_path):
        path = tmp_path / "future.npz"
        np.savez_compressed(
            path, w=model.factors.w, h=model.factors.h,
            format_version=np.int64(FORMAT_VERSION + 41),
        )
        with pytest.raises(DataError, match=str(FORMAT_VERSION + 41)):
            CompletionModel.load(path)

    def test_repr(self, model):
        assert "users=3" in repr(model)


class TestEndToEnd:
    def test_model_from_trained_nomad(self, small_split):
        train, test = small_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        sim = NomadSimulation(
            train, test, cluster,
            HyperParams(k=4, lambda_=0.01, alpha=0.1, beta=0.01),
            RunConfig(duration=0.03, eval_interval=0.01, seed=2),
        )
        sim.run()
        model = CompletionModel(sim.factors)
        assert model.rmse(test) < 0.5
        seen, _ = train.items_of_user(0)
        recs = model.recommend(0, top_n=5, exclude=seen)
        assert len(recs) == 5
        assert not set(item for item, _ in recs) & set(seen.tolist())
