"""Tests for the unified solver facade (repro.fit, registries, FitResult)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import (
    ALGORITHMS,
    ENGINES,
    AlgorithmSpec,
    EngineSpec,
    fit,
    register_algorithm,
    register_engine,
    resolve_algorithm,
    resolve_engine,
    supported_pairs,
)
from repro.api.result import FitResult, FitTiming
from repro.config import HyperParams, RunConfig
from repro.core.nomad import NomadOptions, NomadSimulation
from repro.errors import ConfigError
from repro.linalg.backends import BACKENDS
from repro.model import CompletionModel
from repro.runtime.result import RuntimeResult
from repro.simulator.cluster import Cluster
from repro.simulator.network import HPC_PROFILE

HYPER = HyperParams(k=4, lambda_=0.01, alpha=0.1, beta=0.01)
SIM_RUN = RunConfig(duration=0.005, eval_interval=0.001, seed=3)
#: Real wall seconds for the live-engine smoke runs — short but long
#: enough for every worker to apply updates.
LIVE_RUN = RunConfig(duration=0.25, eval_interval=0.25, seed=3)


class TestRegistries:
    def test_stock_engines_registered(self):
        assert {
            "simulated", "threaded", "multiprocess", "cluster", "dynamic"
        } == set(ENGINES)

    def test_stock_algorithms_registered(self):
        expected = {"NOMAD", "DSGD", "DSGD++", "FPSGD**", "CCD++", "ALS",
                    "GraphLab-ALS", "Hogwild", "SerialSGD"}
        assert expected == set(ALGORITHMS)

    def test_lookup_is_case_insensitive(self):
        assert resolve_algorithm("nomad").name == "NOMAD"
        assert resolve_algorithm("NoMaD").name == "NOMAD"
        assert resolve_engine("SIMULATED").name == "simulated"

    def test_lookup_honors_aliases(self):
        assert resolve_algorithm("fpsgd").name == "FPSGD**"
        assert resolve_algorithm("ccd").name == "CCD++"
        assert resolve_algorithm("graphlab").name == "GraphLab-ALS"
        assert resolve_algorithm("serial").name == "SerialSGD"
        assert resolve_algorithm("dsgdpp").name == "DSGD++"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            resolve_algorithm("svd++")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            resolve_engine("gpu")

    def test_capability_flags(self):
        assert ALGORITHMS["NOMAD"].engines == {
            "simulated", "threaded", "multiprocess", "cluster", "dynamic"
        }
        for name, spec in ALGORITHMS.items():
            if name != "NOMAD":
                assert spec.engines == {"simulated"}, name

    def test_stream_capability_flags(self):
        assert ALGORITHMS["NOMAD"].stream_engines == {"dynamic"}
        assert ENGINES["dynamic"].supports_stream
        for name, spec in ENGINES.items():
            if name != "dynamic":
                assert not spec.supports_stream, name
        assert repro.supported_stream_pairs() == [("NOMAD", "dynamic")]

    def test_supported_pairs_matrix(self):
        pairs = supported_pairs()
        # 9 algorithms on simulated + NOMAD on the four other engines.
        assert len(pairs) == len(ALGORITHMS) + 4
        assert ("NOMAD", "threaded") in pairs
        assert ("NOMAD", "cluster") in pairs
        assert ("NOMAD", "dynamic") in pairs
        assert ("ALS", "threaded") not in pairs
        assert ("ALS", "cluster") not in pairs
        assert ("ALS", "dynamic") not in pairs

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_algorithm(
                AlgorithmSpec(name="NOMAD", engines=frozenset({"simulated"}))
            )
        with pytest.raises(ConfigError, match="already registered"):
            register_engine(
                EngineSpec(name="simulated", runner=lambda request: None)
            )

    def test_alias_collision_rejected_atomically(self):
        with pytest.raises(ConfigError, match="already taken"):
            register_algorithm(
                AlgorithmSpec(
                    name="MyALS",
                    engines=frozenset({"simulated"}),
                    aliases=("als",),
                )
            )
        assert "MyALS" not in ALGORITHMS
        # Registration is atomic: the rejected spec's own name was not
        # half-written into the lookup index (a lookup raises the normal
        # ConfigError, not a KeyError from a dangling index entry).
        with pytest.raises(ConfigError, match="unknown algorithm"):
            resolve_algorithm("myals")

    def test_top_level_exports(self):
        assert repro.fit is fit
        assert repro.ALGORITHMS is ALGORITHMS
        assert repro.ENGINES is ENGINES
        assert repro.FitResult is FitResult
        assert repro.FitTiming is FitTiming


class TestPairRejection:
    def test_baseline_on_live_engine_rejected(self, tiny_split):
        train, test = tiny_split
        with pytest.raises(ConfigError) as excinfo:
            fit(train, test, algorithm="als", engine="threaded")
        message = str(excinfo.value)
        # The error names the pair and lists the full support matrix.
        assert "'ALS'" in message and "'threaded'" in message
        assert (
            "NOMAD: cluster, dynamic, multiprocess, simulated, threaded"
            in message
        )
        assert "ALS: simulated" in message

    def test_every_undeclared_pair_rejected(self, tiny_split):
        train, test = tiny_split
        declared = set(supported_pairs())
        for algorithm in ALGORITHMS:
            for engine in ENGINES:
                if (algorithm, engine) in declared:
                    continue
                with pytest.raises(ConfigError):
                    fit(train, test, algorithm=algorithm, engine=engine)


class TestFitSimulated:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_smoke_every_algorithm(self, tiny_split, algorithm):
        train, test = tiny_split
        result = fit(
            train, test, algorithm=algorithm, engine="simulated",
            hyper=HYPER, run=SIM_RUN,
            cluster=Cluster(1, 2, HPC_PROFILE, jitter=0.0),
        )
        assert result.algorithm == ALGORITHMS[algorithm].name
        assert result.engine == "simulated"
        assert len(result.trace) >= 2
        assert result.timing.simulated_seconds == pytest.approx(
            result.trace.duration()
        )
        assert result.timing.wall_seconds > 0
        assert result.timing.join_seconds == 0.0
        assert np.all(np.isfinite(result.factors.w))
        assert np.all(np.isfinite(result.factors.h))

    def test_matches_direct_nomad_simulation(self, tiny_split):
        """fit(engine='simulated') is the pre-redesign class, record for
        record, at a fixed seed."""
        train, test = tiny_split
        cluster = Cluster(2, 2, HPC_PROFILE)
        direct = NomadSimulation(train, test, cluster, HYPER, SIM_RUN)
        direct_trace = direct.run()

        result = fit(
            train, test, algorithm="nomad", engine="simulated",
            hyper=HYPER, run=SIM_RUN, cluster=Cluster(2, 2, HPC_PROFILE),
        )
        assert result.trace.records == direct_trace.records
        assert np.array_equal(result.factors.w, direct.factors.w)
        assert np.array_equal(result.factors.h, direct.factors.h)
        assert result.timing.updates == direct.total_updates

    def test_model_predicts(self, tiny_split):
        train, test = tiny_split
        result = fit(train, test, hyper=HYPER, run=SIM_RUN)
        model = result.model
        assert isinstance(model, CompletionModel)
        assert result.model is model  # cached, not rebuilt
        assert np.isfinite(model.predict_one(0, 0))
        recommendations = model.recommend(0, top_n=3)
        assert len(recommendations) == 3

    def test_test_defaults_to_train(self, tiny_split):
        train, _ = tiny_split
        result = fit(train, hyper=HYPER, run=SIM_RUN)
        assert result.trace.final_rmse() < result.trace.records[0].rmse

    def test_raw_exposes_simulation(self, tiny_split):
        train, test = tiny_split
        result = fit(
            train, test, hyper=HYPER, run=SIM_RUN,
            options=NomadOptions(record_updates=True),
        )
        assert isinstance(result.raw, NomadSimulation)
        assert result.raw.update_log

    def test_algorithm_kwargs_forwarded(self, tiny_split):
        train, test = tiny_split
        result = fit(
            train, test, algorithm="hogwild", hyper=HYPER, run=SIM_RUN,
            cluster=Cluster(1, 2, HPC_PROFILE),
            refresh_period=4, record_updates=True,
        )
        assert result.raw.refresh_period == 4
        assert result.raw.update_log

    def test_options_rejected_for_baselines(self, tiny_split):
        train, test = tiny_split
        with pytest.raises(ConfigError, match="only applies to NOMAD"):
            fit(
                train, test, algorithm="dsgd", hyper=HYPER, run=SIM_RUN,
                options=NomadOptions(),
            )

    def test_non_rating_matrix_rejected(self):
        with pytest.raises(ConfigError, match="RatingMatrix"):
            fit(np.zeros((3, 3)))

    def test_shared_factors_forwarded(self, tiny_split):
        """The §5.1 shared-initialization protocol works through fit()."""
        from repro.linalg.factors import init_factors
        from repro.rng import RngFactory

        train, test = tiny_split
        factors = init_factors(
            train.n_rows, train.n_cols, HYPER.k, RngFactory(99).stream("init")
        )
        result = fit(
            train, test, hyper=HYPER, run=SIM_RUN, factors=factors,
        )
        assert result.trace.records[0].rmse == pytest.approx(
            fit(
                train, test, algorithm="dsgd", hyper=HYPER, run=SIM_RUN,
                factors=factors,
            ).trace.records[0].rmse
        )


class TestFitLiveEngines:
    @pytest.mark.parametrize("engine", ["threaded", "multiprocess", "cluster"])
    def test_smoke(self, tiny_split, engine):
        train, test = tiny_split
        result = fit(
            train, test, algorithm="nomad", engine=engine,
            hyper=HYPER, run=LIVE_RUN, n_workers=2,
        )
        assert result.engine == engine
        assert result.timing.updates > 0
        assert result.timing.simulated_seconds is None
        assert result.timing.updates_per_worker is not None
        assert len(result.timing.updates_per_worker) == 2
        assert sum(result.timing.updates_per_worker) == result.timing.updates
        # Two-point trace: initialization at t=0, final model at wall time.
        assert len(result.trace) == 2
        assert result.trace.records[0].time == 0.0
        assert result.trace.records[0].updates == 0
        assert result.trace.records[-1].rmse == pytest.approx(
            result.final_rmse()
        )
        assert isinstance(result.raw, RuntimeResult)
        assert result.kernel_backend in ("numpy", "cext")
        assert np.isfinite(result.model.predict_one(0, 0))

    def test_default_run_uses_runtime_one_second_budget(self, tiny_split):
        """fit(engine='threaded') with no run= keeps the runtimes'
        historical 1-second wall default, not RunConfig's 10 seconds."""
        train, test = tiny_split
        result = fit(train, test, engine="threaded", hyper=HYPER,
                     n_workers=1)
        assert 1.0 <= result.timing.wall_seconds < 1.0 + 0.6

    def test_workers_from_cluster(self, tiny_split):
        train, test = tiny_split
        result = fit(
            train, test, engine="threaded", hyper=HYPER, run=LIVE_RUN,
            cluster=Cluster(1, 3, HPC_PROFILE),
        )
        assert len(result.timing.updates_per_worker) == 3

    def test_options_rejected(self, tiny_split):
        train, test = tiny_split
        with pytest.raises(ConfigError, match="simulated engine"):
            fit(
                train, test, engine="threaded", hyper=HYPER, run=LIVE_RUN,
                options=NomadOptions(),
            )

    @pytest.mark.parametrize("engine", ["threaded", "multiprocess", "cluster"])
    def test_warm_start_honored(self, tiny_split, engine):
        """init_factors= threads through the live engines: the t=0 trace
        point is the warm start's RMSE and the caller's arrays survive."""
        from repro.linalg.factors import init_factors
        from repro.linalg.objective import test_rmse
        from repro.rng import RngFactory

        train, test = tiny_split
        warm = fit(
            train, test, hyper=HYPER, run=SIM_RUN,
        ).factors
        w_before, h_before = warm.w.copy(), warm.h.copy()
        result = fit(
            train, test, engine=engine, hyper=HYPER, run=LIVE_RUN,
            n_workers=2, init_factors=warm,
        )
        assert result.trace.records[0].rmse == pytest.approx(
            test_rmse(warm, test)
        )
        assert np.array_equal(warm.w, w_before)
        assert np.array_equal(warm.h, h_before)
        # A warm model should never be *worse* than where it started by
        # much; allow slack for short asynchronous runs.
        assert result.final_rmse() < result.trace.records[0].rmse * 1.10

    def test_warm_start_shape_mismatch_rejected(self, tiny_split):
        from repro.linalg.factors import init_factors
        from repro.rng import RngFactory

        train, test = tiny_split
        bad = init_factors(3, 3, HYPER.k, RngFactory(0).stream("init"))
        for engine in ("simulated", "threaded", "multiprocess", "cluster",
                       "dynamic"):
            with pytest.raises(ConfigError, match="init factors"):
                fit(
                    train, test, engine=engine, hyper=HYPER, run=LIVE_RUN,
                    init_factors=bad,
                )

    def test_init_factors_and_legacy_alias_conflict(self, tiny_split):
        from repro.linalg.factors import init_factors
        from repro.rng import RngFactory

        train, test = tiny_split
        factors = init_factors(
            train.n_rows, train.n_cols, HYPER.k, RngFactory(0).stream("init")
        )
        with pytest.raises(ConfigError, match="not both"):
            fit(
                train, test, hyper=HYPER, run=SIM_RUN,
                init_factors=factors, factors=factors,
            )

    def test_unknown_kwargs_rejected(self, tiny_split):
        train, test = tiny_split
        with pytest.raises(ConfigError, match="refresh_period"):
            fit(
                train, test, engine="threaded", hyper=HYPER, run=LIVE_RUN,
                refresh_period=4,
            )

    def test_bad_n_workers_rejected(self, tiny_split):
        train, test = tiny_split
        with pytest.raises(ConfigError, match="n_workers"):
            fit(train, test, engine="threaded", run=LIVE_RUN, n_workers=0)


class TestFitResultShape:
    def test_summary_mentions_engine_and_updates(self, tiny_split):
        train, test = tiny_split
        result = fit(train, test, hyper=HYPER, run=SIM_RUN)
        text = result.summary()
        assert "NOMAD" in text and "simulated" in text
        assert f"{result.timing.updates:,}" in text

    def test_repr_omits_raw(self, tiny_split):
        train, test = tiny_split
        result = fit(train, test, hyper=HYPER, run=SIM_RUN)
        assert "raw=" not in repr(result)

    def test_kernel_backend_recorded(self, tiny_split):
        """The result names the backend 'auto' actually resolved to,
        and the summary line repeats it."""
        train, test = tiny_split
        result = fit(train, test, hyper=HYPER, run=SIM_RUN)
        assert result.kernel_backend in BACKENDS
        assert f"[{result.kernel_backend} kernels]" in result.summary()

    def test_updates_per_second_prefers_simulated_clock(self):
        timing = FitTiming(
            wall_seconds=2.0, simulated_seconds=0.5, updates=100
        )
        assert timing.updates_per_second == pytest.approx(200.0)
        live = FitTiming(wall_seconds=2.0, updates=100)
        assert live.updates_per_second == pytest.approx(50.0)


class TestNewEngineRegistration:
    def test_custom_engine_plugs_in(self, tiny_split, monkeypatch):
        """The ROADMAP story: a new substrate is one registry entry."""
        monkeypatch.setattr(
            "repro.api.registry.ENGINES", dict(ENGINES)
        )
        from repro.api import registry as registry_module

        calls = []

        def runner(request):
            calls.append(request.algorithm.name)
            return "sentinel"

        registry_module.register_engine(
            EngineSpec(name="sockets", runner=runner)
        )
        # Not flagged on any algorithm yet: the pair check still guards.
        train, test = tiny_split
        with pytest.raises(ConfigError, match="sockets"):
            fit(train, test, engine="sockets")

    def test_engine_names_case_folded_on_registration(self, monkeypatch):
        """A mixed-case registered name stays reachable through the
        case-insensitive lookup."""
        monkeypatch.setattr("repro.api.registry.ENGINES", dict(ENGINES))
        from repro.api import registry as registry_module

        spec = registry_module.register_engine(
            EngineSpec(name="Numba", runner=lambda request: None)
        )
        assert spec.name == "numba"
        assert registry_module.resolve_engine("Numba") is spec
        assert registry_module.resolve_engine("numba") is spec
