"""Tests for the deterministic RNG stream factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import RngFactory, derive_pyrandom, derive_rng


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).stream("x")
        b = RngFactory(42).stream("x")
        assert np.array_equal(a.random(100), b.random(100))

    def test_different_names_differ(self):
        factory = RngFactory(42)
        a = factory.stream("alpha")
        b = factory.stream("beta")
        assert not np.array_equal(a.random(100), b.random(100))

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x")
        b = RngFactory(2).stream("x")
        assert not np.array_equal(a.random(100), b.random(100))

    def test_stream_is_fresh_each_call(self):
        factory = RngFactory(9)
        first = factory.stream("s").random(10)
        second = factory.stream("s").random(10)
        assert np.array_equal(first, second)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_seed_property(self):
        assert RngFactory(17).seed == 17

    def test_repr_mentions_seed(self):
        assert "17" in repr(RngFactory(17))


class TestPyrandom:
    def test_deterministic(self):
        a = RngFactory(5).pyrandom("route")
        b = RngFactory(5).pyrandom("route")
        assert [a.randrange(100) for _ in range(50)] == [
            b.randrange(100) for _ in range(50)
        ]

    def test_name_sensitivity(self):
        factory = RngFactory(5)
        a = factory.pyrandom("one")
        b = factory.pyrandom("two")
        assert [a.randrange(1000) for _ in range(20)] != [
            b.randrange(1000) for _ in range(20)
        ]

    def test_independent_of_numpy_stream(self):
        factory = RngFactory(5)
        before = factory.pyrandom("x").randrange(10**9)
        factory.stream("x").random(1000)  # consuming numpy must not matter
        after = factory.pyrandom("x").randrange(10**9)
        assert before == after


class TestDeriveFunctions:
    def test_derive_rng_matches_factory(self):
        assert np.array_equal(
            derive_rng(3, "n").random(10), RngFactory(3).stream("n").random(10)
        )

    def test_derive_pyrandom_matches_factory(self):
        a = derive_pyrandom(3, "n")
        b = RngFactory(3).pyrandom("n")
        assert a.random() == b.random()

    def test_unicode_names_supported(self):
        generator = derive_rng(0, "Ω̄-stream")
        assert 0.0 <= generator.random() < 1.0
