"""Tests for the discrete-event engine, cluster model, network, and traces."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.simulator.cluster import Cluster, HardwareProfile, PAPER_HARDWARE
from repro.simulator.engine import Simulator
from repro.simulator.events import EventQueue
from repro.simulator.network import (
    COMMODITY_PROFILE,
    HPC_PROFILE,
    LOCAL_PROFILE,
    NetworkModel,
    token_bytes,
)
from repro.simulator.trace import Trace


class TestEventQueue:
    def test_ordering_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: "b")
        queue.push(1.0, lambda: "a")
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_stable_tie_break(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        second = queue.push(1.0, lambda: "second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert queue.pop().time == 2.0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule_after(1.0, chain)

        sim.schedule_at(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()  # can continue afterwards
        assert fired == [1, 5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-0.1, lambda: None)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            for t in (3.0, 1.0, 1.0, 2.0):
                sim.schedule_at(t, lambda t=t: log.append((sim.now, t)))
            sim.run()
            return log

        assert run_once() == run_once()


class TestNetworkModel:
    def test_token_bytes(self):
        assert token_bytes(100) == 816
        with pytest.raises(ConfigError):
            token_bytes(0)

    def test_token_delay_batching(self):
        unbatched = NetworkModel("x", 1e-3, 1e9, batch_size=1)
        batched = NetworkModel("x", 1e-3, 1e9, batch_size=100)
        assert batched.token_delay(8) < unbatched.token_delay(8)

    def test_bulk_delay_components(self):
        net = NetworkModel("x", 1e-3, 1e6)
        assert net.bulk_delay(1e6) == pytest.approx(1e-3 + 1.0)

    def test_profiles_ordering(self):
        # Commodity must be strictly slower per token than HPC.
        assert COMMODITY_PROFILE.token_delay(8) > HPC_PROFILE.token_delay(8)
        assert LOCAL_PROFILE.token_delay(8) < HPC_PROFILE.token_delay(8)

    def test_scaled(self):
        slower = HPC_PROFILE.scaled(latency_factor=10, bandwidth_factor=0.1)
        assert slower.latency_s == pytest.approx(HPC_PROFILE.latency_s * 10)
        assert slower.bandwidth_bps == pytest.approx(
            HPC_PROFILE.bandwidth_bps * 0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkModel("x", -1.0, 1e9)
        with pytest.raises(ConfigError):
            NetworkModel("x", 0.0, 0.0)
        with pytest.raises(ConfigError):
            NetworkModel("x", 0.0, 1e9, batch_size=0)

    def test_bulk_delay_negative_bytes(self):
        with pytest.raises(ConfigError):
            HPC_PROFILE.bulk_delay(-1)


class TestHardwareProfile:
    def test_paper_hardware_throughput(self):
        # ~4M updates/core/sec at k=100 (Figure 6 right).
        per_update = PAPER_HARDWARE.sgd_update_time(100)
        assert 1e6 < 1.0 / per_update < 1e7

    def test_als_solve_time_scales(self):
        assert PAPER_HARDWARE.als_solve_time(10, 100) < PAPER_HARDWARE.als_solve_time(
            10, 1000
        )

    def test_ccd_pass_time_linear(self):
        assert PAPER_HARDWARE.ccd_pass_time(2000) == pytest.approx(
            2 * PAPER_HARDWARE.ccd_pass_time(1000)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            HardwareProfile(sgd_cost_per_dim=0.0)
        with pytest.raises(ConfigError):
            HardwareProfile(flop_s=-1.0)


class TestCluster:
    def test_topology(self):
        cluster = Cluster(3, 4, HPC_PROFILE)
        assert cluster.n_workers == 12
        assert cluster.machine_of(0) == 0
        assert cluster.machine_of(11) == 2
        assert cluster.workers_of_machine(1) == [4, 5, 6, 7]
        assert cluster.same_machine(4, 7)
        assert not cluster.same_machine(3, 4)

    def test_worker_resolution(self):
        cluster = Cluster(2, 2, HPC_PROFILE)
        worker = cluster.worker(3)
        assert (worker.machine_id, worker.core_id) == (1, 1)
        with pytest.raises(ConfigError):
            cluster.worker(4)

    def test_token_delay_local_vs_remote(self):
        cluster = Cluster(2, 2, HPC_PROFILE)
        local = cluster.token_delay(0, 1, 8)
        remote = cluster.token_delay(0, 2, 8)
        assert local < remote

    def test_speed_scaling(self):
        speeds = np.array([1.0, 0.5])
        cluster = Cluster(2, 1, HPC_PROFILE, machine_speeds=speeds)
        fast = cluster.sgd_time(0, 8, 100)
        slow = cluster.sgd_time(1, 8, 100)
        assert slow == pytest.approx(2 * fast)

    def test_speed_validation(self):
        with pytest.raises(ConfigError):
            Cluster(2, 1, HPC_PROFILE, machine_speeds=np.array([1.0]))
        with pytest.raises(ConfigError):
            Cluster(2, 1, HPC_PROFILE, machine_speeds=np.array([1.0, 0.0]))

    def test_jitter_disabled_is_exactly_one(self):
        cluster = Cluster(2, 1, HPC_PROFILE, jitter=0.0)
        rng = random.Random(0)
        assert cluster.jitter_multiplier(rng) == 1.0
        assert cluster.barrier_multiplier(rng) == 1.0

    def test_jitter_mean_one(self):
        cluster = Cluster(2, 1, HPC_PROFILE, jitter=0.4)
        rng = random.Random(1)
        draws = [cluster.jitter_multiplier(rng) for _ in range(20000)]
        assert abs(np.mean(draws) - 1.0) < 0.03

    def test_barrier_slower_than_single(self):
        cluster = Cluster(8, 1, HPC_PROFILE, jitter=0.4)
        rng = random.Random(2)
        singles = np.mean([cluster.jitter_multiplier(rng) for _ in range(5000)])
        barriers = np.mean([cluster.barrier_multiplier(rng) for _ in range(5000)])
        assert barriers > singles * 1.2

    def test_jitter_validation(self):
        with pytest.raises(ConfigError):
            Cluster(1, 1, HPC_PROFILE, jitter=-0.1)

    def test_bad_topology(self):
        with pytest.raises(ConfigError):
            Cluster(0, 1, HPC_PROFILE)
        with pytest.raises(ConfigError):
            Cluster(1, 0, HPC_PROFILE)


class TestTrace:
    def make_trace(self):
        trace = Trace(algorithm="X", n_workers=4)
        trace.add(0.0, 0, 2.0)
        trace.add(1.0, 100, 1.0)
        trace.add(2.0, 200, 0.5)
        return trace

    def test_summaries(self):
        trace = self.make_trace()
        assert trace.final_rmse() == 0.5
        assert trace.best_rmse() == 0.5
        assert trace.total_updates() == 200
        assert trace.duration() == 2.0
        assert trace.throughput_per_worker() == pytest.approx(25.0)

    def test_series_axes(self):
        trace = self.make_trace()
        assert trace.times() == [0.0, 1.0, 2.0]
        assert trace.updates() == [0, 100, 200]
        assert trace.rmses() == [2.0, 1.0, 0.5]
        assert trace.cpu_times() == [0.0, 4.0, 8.0]

    def test_time_to_rmse(self):
        trace = self.make_trace()
        assert trace.time_to_rmse(1.5) == 1.0
        assert trace.time_to_rmse(0.4) is None
        assert trace.updates_to_rmse(1.0) == 100

    def test_monotone_time_enforced(self):
        trace = self.make_trace()
        with pytest.raises(SimulationError):
            trace.add(1.0, 300, 0.4)

    def test_empty_trace_errors(self):
        trace = Trace(algorithm="X", n_workers=1)
        with pytest.raises(SimulationError):
            trace.final_rmse()

    def test_csv_round_trippable(self):
        text = self.make_trace().to_csv()
        lines = text.strip().split("\n")
        assert lines[0] == "time,updates,rmse,objective"
        assert len(lines) == 4

    def test_len_and_repr(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert "X" in repr(trace)
