"""Cross-backend equivalence suite and backend-selection tests.

The kernel backends of :mod:`repro.linalg.backends` must be numerically
interchangeable: identical visit order, identical counter schedule, and
factors matching to float-rounding noise (``atol=1e-10``) on every kernel
variant and on whole optimizer runs.  These tests pin that contract so a
future backend (numba, Cython, GPU) has an executable specification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HyperParams, RunConfig
from repro.core.nomad import NomadSimulation
from repro.baselines.dsgd import DSGDSimulation
from repro.baselines.hogwild import HogwildSimulation
from repro.baselines.serial_sgd import SerialSGD
from repro.errors import ConfigError
from repro.linalg.backends import (
    AUTO_NUMPY_MIN_K,
    BACKENDS,
    CextBackend,
    ListBackend,
    NumpyBackend,
    cext_available,
    get_backend,
    resolve_backend,
)
from repro.linalg.factors import FactorPair
from repro.linalg.losses import HuberLoss
from repro.simulator.cluster import Cluster
from repro.simulator.network import HPC_PROFILE

ATOL = 1e-10

ALPHA, BETA, LAMBDA = 0.1, 0.02, 0.05

needs_cext = pytest.mark.skipif(
    not cext_available(), reason="no usable C toolchain (cext unavailable)"
)

#: Backends compared against the list reference in the equivalence suite;
#: ``cext`` rows skip cleanly where the toolchain is absent.
OTHER_BACKENDS = ["numpy", pytest.param("cext", marks=needs_cext)]

#: Every backend expected to run on this box (storage/selection tests).
def _available_backends() -> list[str]:
    names = ["list", "numpy"]
    if cext_available():
        names.append("cext")
    return names


def _fixture(seed: int, m: int = 12, n: int = 8, k: int = 5, nnz: int = 30):
    """Shared random factors and entries, one copy per backend."""
    rng = np.random.default_rng(seed)
    w = rng.random((m, k))
    h = rng.random((n, k))
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.random(nnz) * 4.0
    order = rng.permutation(nnz)
    return w, h, rows, cols, vals, order


def _stores(w: np.ndarray, h: np.ndarray, other: str):
    pair = FactorPair(w.copy(), h.copy())
    return ListBackend().make_store(pair), get_backend(other).make_store(pair)


class TestKernelEquivalence:
    """Every backend agrees with the list reference on all kernel variants."""

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_process_column(self, other):
        w, h, rows, _, vals, _ = _fixture(0)
        (w_l, h_l), (w_n, h_n) = _stores(w, h, other)
        counts_l = [3] * len(rows)
        counts_n = np.full(len(rows), 3, dtype=np.int64)
        a = ListBackend().process_column(
            w_l, h_l[2], rows.tolist(), vals.tolist(), counts_l,
            ALPHA, BETA, LAMBDA,
        )
        b = get_backend(other).process_column(
            w_n, h_n[2], rows, vals, counts_n, ALPHA, BETA, LAMBDA
        )
        assert a == b == len(rows)
        assert np.allclose(np.asarray(w_l), w_n, atol=ATOL)
        assert np.allclose(np.asarray(h_l), h_n, atol=ATOL)
        assert counts_l == counts_n.tolist() == [4] * len(rows)

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_process_column_loss(self, other):
        w, h, rows, _, vals, _ = _fixture(1)
        (w_l, h_l), (w_n, h_n) = _stores(w, h, other)
        loss = HuberLoss(delta=0.5)
        counts_l = [0] * len(rows)
        counts_n = np.zeros(len(rows), dtype=np.int64)
        ListBackend().process_column_loss(
            w_l, h_l[0], rows.tolist(), vals.tolist(), counts_l,
            ALPHA, BETA, LAMBDA, loss,
        )
        get_backend(other).process_column_loss(
            w_n, h_n[0], rows, vals, counts_n, ALPHA, BETA, LAMBDA, loss
        )
        assert np.allclose(np.asarray(w_l), w_n, atol=ATOL)
        assert np.allclose(np.asarray(h_l), h_n, atol=ATOL)

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_process_column_batch(self, other):
        """The fused batch entry is identical to looped process_column."""
        w, h, _, _, _, _ = _fixture(6)
        rng = np.random.default_rng(60)
        items = [0, 3, 5, 1]
        col_users = [rng.integers(0, w.shape[0], size=m) for m in (7, 0, 11, 4)]
        col_ratings = [rng.random(u.size) * 4.0 for u in col_users]
        (w_l, h_l), (w_n, h_n) = _stores(w, h, other)
        counts_l = [[1] * u.size for u in col_users]
        counts_n = [np.ones(u.size, dtype=np.int64) for u in col_users]
        reference = ListBackend()
        a = 0
        for j, users, ratings, counts in zip(
            items, col_users, col_ratings, counts_l
        ):
            a += reference.process_column(
                w_l, h_l[j], users.tolist(), ratings.tolist(),
                counts, ALPHA, BETA, LAMBDA,
            )
        backend = get_backend(other)
        b = backend.process_column_batch(
            w_n,
            [backend.row(h_n, j) for j in items],
            col_users,
            col_ratings,
            counts_n,
            ALPHA, BETA, LAMBDA,
        )
        assert a == b == sum(u.size for u in col_users)
        assert np.allclose(np.asarray(w_l), np.asarray(w_n), atol=ATOL)
        assert np.allclose(np.asarray(h_l), np.asarray(h_n), atol=ATOL)
        for expected, got in zip(counts_l, counts_n):
            assert expected == list(got)

    def test_process_column_batch_empty(self):
        for name in _available_backends():
            assert get_backend(name).process_column_batch(
                [], [], [], [], [], ALPHA, BETA, LAMBDA
            ) == 0

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_process_entries(self, other):
        w, h, rows, cols, vals, order = _fixture(2)
        (w_l, h_l), (w_n, h_n) = _stores(w, h, other)
        counts_l = [0] * len(rows)
        counts_n = np.zeros(len(rows), dtype=np.int64)
        a = ListBackend().process_entries(
            w_l, h_l, rows.tolist(), cols.tolist(), vals.tolist(),
            counts_l, ALPHA, BETA, LAMBDA, order.tolist(),
        )
        b = get_backend(other).process_entries(
            w_n, h_n, rows, cols, vals, counts_n, ALPHA, BETA, LAMBDA, order
        )
        assert a == b == len(order)
        assert np.allclose(np.asarray(w_l), w_n, atol=ATOL)
        assert np.allclose(np.asarray(h_l), h_n, atol=ATOL)
        assert counts_l == counts_n.tolist()

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_process_entries_const(self, other):
        w, h, rows, cols, vals, order = _fixture(3)
        (w_l, h_l), (w_n, h_n) = _stores(w, h, other)
        a = ListBackend().process_entries_const(
            w_l, h_l, rows.tolist(), cols.tolist(), vals.tolist(),
            0.07, LAMBDA, order.tolist(),
        )
        b = get_backend(other).process_entries_const(
            w_n, h_n, rows, cols, vals, 0.07, LAMBDA, order
        )
        assert a == b == len(order)
        assert np.allclose(np.asarray(w_l), w_n, atol=ATOL)
        assert np.allclose(np.asarray(h_l), h_n, atol=ATOL)

    def test_empty_entries_noop(self):
        for name in _available_backends():
            backend = get_backend(name)
            assert backend.process_entries(
                [], [], [], [], [], [], ALPHA, BETA, LAMBDA, []
            ) == 0
            assert backend.process_entries_const(
                [], [], [], [], [], 0.1, LAMBDA, []
            ) == 0

    def test_storage_round_trip(self):
        w, h, *_ = _fixture(4)
        pair = FactorPair(w.copy(), h.copy())
        for name in _available_backends():
            backend = get_backend(name)
            store_w, store_h = backend.make_store(pair)
            out = backend.export(store_w, store_h)
            assert np.array_equal(out.w, w)
            assert np.array_equal(out.h, h)
            # export is decoupled: mutating the store must not leak out.
            backend.row(store_w, 0)[0] = 123.0
            assert out.w[0, 0] == w[0, 0]

    def test_snapshot_restore(self):
        w, h, *_ = _fixture(5)
        pair = FactorPair(w.copy(), h.copy())
        for name in _available_backends():
            backend = get_backend(name)
            store_w, _ = backend.make_store(pair)
            snap = backend.copy_rows(store_w)
            backend.row(store_w, 1)[2] = -99.0
            backend.restore_rows(store_w, snap)
            assert np.allclose(np.asarray(store_w), w)


class TestSimulationEquivalence:
    """Whole optimizer runs are backend-independent."""

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_nomad_matches_across_backends(self, small_split, other):
        train, test = small_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        hyper = HyperParams(k=4, lambda_=0.01, alpha=0.05)
        traces = {}
        factors = {}
        for backend in ("list", other):
            run = RunConfig(
                duration=0.005, eval_interval=0.001, seed=3,
                kernel_backend=backend,
            )
            sim = NomadSimulation(train, test, cluster, hyper, run)
            assert sim.kernel_backend == backend
            traces[backend] = sim.run()
            factors[backend] = sim.factors
        assert np.allclose(
            factors["list"].w, factors[other].w, atol=1e-8
        )
        assert np.allclose(
            factors["list"].h, factors[other].h, atol=1e-8
        )
        rmse_l = [r.rmse for r in traces["list"].records]
        rmse_n = [r.rmse for r in traces[other].records]
        assert np.allclose(rmse_l, rmse_n, atol=1e-8)

    @pytest.mark.parametrize("optimizer", [SerialSGD, DSGDSimulation,
                                           HogwildSimulation])
    def test_baselines_match_across_backends(self, small_split, optimizer):
        train, test = small_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        hyper = HyperParams(k=4, lambda_=0.01, alpha=0.05)
        finals = {}
        for backend in ("list", "numpy"):
            run = RunConfig(
                duration=0.004, eval_interval=0.001, seed=5,
                kernel_backend=backend,
            )
            opt = optimizer(train, test, cluster, hyper, run)
            trace = opt.run()
            finals[backend] = (opt.factors, trace.final_rmse())
        assert np.allclose(
            finals["list"][0].w, finals["numpy"][0].w, atol=1e-8
        )
        assert np.allclose(
            finals["list"][0].h, finals["numpy"][0].h, atol=1e-8
        )
        assert finals["list"][1] == pytest.approx(finals["numpy"][1], abs=1e-8)


class TestSelection:
    def test_registry_names(self):
        assert set(BACKENDS) == {"list", "numpy", "cext"}
        assert isinstance(get_backend("list"), ListBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)
        if cext_available():
            assert isinstance(get_backend("cext"), CextBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            get_backend("cython")
        with pytest.raises(ConfigError):
            resolve_backend("gpu", k=8)

    @needs_cext
    def test_auto_prefers_cext_when_available(self):
        # The compiled backend dominates at every k and for every storage.
        assert isinstance(resolve_backend("auto", k=8), CextBackend)
        assert isinstance(
            resolve_backend("auto", k=AUTO_NUMPY_MIN_K), CextBackend
        )
        assert isinstance(
            resolve_backend("auto", k=4, storage="ndarray"), CextBackend
        )

    def test_auto_selects_by_k(self, monkeypatch):
        # Mask the toolchain: "auto" falls back to the interpreted
        # crossover, exactly as on a box with no compiler.
        monkeypatch.setenv("NOMAD_CEXT_DISABLE", "1")
        assert isinstance(resolve_backend("auto", k=8), ListBackend)
        assert isinstance(
            resolve_backend("auto", k=AUTO_NUMPY_MIN_K), NumpyBackend
        )

    def test_none_consults_env_var(self, monkeypatch):
        monkeypatch.setenv("NOMAD_CEXT_DISABLE", "1")
        monkeypatch.delenv("NOMAD_KERNEL_BACKEND", raising=False)
        assert isinstance(resolve_backend(None, k=4), ListBackend)
        monkeypatch.setenv("NOMAD_KERNEL_BACKEND", "numpy")
        assert isinstance(resolve_backend(None, k=4), NumpyBackend)
        # Explicit names ignore the environment entirely.
        assert isinstance(resolve_backend("list", k=4), ListBackend)

    def test_auto_prefers_numpy_for_ndarray_storage(self, monkeypatch):
        monkeypatch.setenv("NOMAD_CEXT_DISABLE", "1")
        assert isinstance(
            resolve_backend("auto", k=4, storage="ndarray"), NumpyBackend
        )
        # Explicit choice still wins over the storage default.
        assert isinstance(
            resolve_backend("list", k=4, storage="ndarray"), ListBackend
        )

    def test_run_config_validates_backend(self):
        assert RunConfig().kernel_backend in ("auto", "cext", "list", "numpy")
        assert RunConfig(kernel_backend="numpy").kernel_backend == "numpy"
        # "cext" is always a *valid* setting (even with no toolchain);
        # availability is enforced at backend resolution, with a clean
        # ConfigError instead of a mid-fit crash.
        assert RunConfig(kernel_backend="cext").kernel_backend == "cext"
        with pytest.raises(ConfigError):
            RunConfig(kernel_backend="fortran")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("NOMAD_KERNEL_BACKEND", "numpy")
        assert RunConfig().kernel_backend == "numpy"
        monkeypatch.setenv("NOMAD_KERNEL_BACKEND", "bogus")
        with pytest.raises(ConfigError):
            RunConfig()
        monkeypatch.delenv("NOMAD_KERNEL_BACKEND")
        assert RunConfig().kernel_backend == "auto"

    def test_simulation_uses_configured_backend(self, tiny_split):
        train, test = tiny_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        hyper = HyperParams(k=4, lambda_=0.01, alpha=0.05)
        run = RunConfig(duration=0.002, eval_interval=0.001,
                        kernel_backend="numpy")
        sim = NomadSimulation(train, test, cluster, hyper, run)
        assert isinstance(sim._backend, NumpyBackend)
        assert isinstance(sim._w_store, np.ndarray)
        run_list = run.with_(kernel_backend="list")
        sim_list = NomadSimulation(train, test, cluster, hyper, run_list)
        assert isinstance(sim_list._backend, ListBackend)
        assert isinstance(sim_list._w_store, list)


class TestMaxUpdatesHalt:
    def test_trace_ends_at_halt_time(self, tiny_split):
        """max_updates halts must not pad the trace until `duration`."""
        train, test = tiny_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        hyper = HyperParams(k=4, lambda_=0.01, alpha=0.05)
        run = RunConfig(
            duration=0.05, eval_interval=0.001, seed=7, max_updates=500
        )
        sim = NomadSimulation(train, test, cluster, hyper, run)
        trace = sim.run()
        assert sim.total_updates >= 500
        final_time = trace.records[-1].time
        # The halt fires long before the duration budget at this scale.
        assert final_time < run.duration / 2
        # No post-halt padding: times strictly increase and the last
        # point is the halt stamp itself, not a scheduled grid point.
        times = [r.time for r in trace.records]
        assert times == sorted(set(times))

    def test_unhalted_run_still_records_until_duration(self, tiny_split):
        train, test = tiny_split
        cluster = Cluster(1, 2, HPC_PROFILE)
        hyper = HyperParams(k=4, lambda_=0.01, alpha=0.05)
        run = RunConfig(duration=0.004, eval_interval=0.001, seed=7)
        sim = NomadSimulation(train, test, cluster, hyper, run)
        trace = sim.run()
        assert trace.records[-1].time == pytest.approx(run.duration)
