"""Miscellaneous edge cases: error hierarchy, doctests, engine guards."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.model
import repro.rng
import repro.simulator.engine
from repro.config import HyperParams, RunConfig
from repro.core.nomad import NomadSimulation
from repro.errors import (
    ConfigError,
    DataError,
    ExperimentError,
    ReproError,
    SimulationError,
)
from repro.simulator.cluster import Cluster
from repro.simulator.engine import Simulator
from repro.simulator.network import HPC_PROFILE


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass", [ConfigError, DataError, SimulationError, ExperimentError]
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise DataError("x")


class TestDoctests:
    @pytest.mark.parametrize(
        "module", [repro.rng, repro.simulator.engine, repro.model]
    )
    def test_module_doctests_pass(self, module):
        failures, _ = doctest.testmod(module)
        assert failures == 0


class TestEngineGuards:
    def test_run_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule_at(0.0, recurse)
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestNomadHopCounters:
    def test_hops_counted(self, tiny_split):
        train, test = tiny_split
        cluster = Cluster(2, 2, HPC_PROFILE)
        sim = NomadSimulation(
            train, test, cluster,
            HyperParams(k=4, lambda_=0.01, alpha=0.1, beta=0.01),
            RunConfig(duration=0.005, eval_interval=0.001, seed=1),
        )
        sim.run()
        assert sim.network_hops > 0
        assert sim.local_hops > 0

    def test_single_machine_all_local(self, tiny_split):
        train, test = tiny_split
        cluster = Cluster(1, 4, HPC_PROFILE)
        sim = NomadSimulation(
            train, test, cluster,
            HyperParams(k=4, lambda_=0.01, alpha=0.1, beta=0.01),
            RunConfig(duration=0.005, eval_interval=0.001, seed=1),
        )
        sim.run()
        assert sim.network_hops == 0
        assert sim.local_hops > 0
