"""Tests for the cluster wire format and the transport substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import wire
from repro.cluster.transport import (
    COORDINATOR,
    LoopbackHub,
    TcpTransport,
)
from repro.errors import ClusterError, WireError
from repro.simulator.network import token_bytes


def make_tokens(n: int, k: int, seed: int = 0) -> list[wire.Token]:
    rng = np.random.default_rng(seed)
    return [
        wire.Token(item=i, queue_hint=i * 3, h=rng.standard_normal(k))
        for i in range(n)
    ]


class TestTokenEnvelope:
    def test_single_token_round_trip(self):
        (token,) = make_tokens(1, k=4)
        decoded = wire.decode(wire.encode_tokens([token], 4))
        assert isinstance(decoded, wire.TokenEnvelope)
        assert decoded.k == 4
        (out,) = decoded.tokens
        assert out.item == token.item
        assert out.queue_hint == token.queue_hint
        np.testing.assert_array_equal(out.h, token.h)

    def test_full_batch_round_trip(self):
        tokens = make_tokens(100, k=8)
        decoded = wire.decode(wire.encode_tokens(tokens, 8))
        assert len(decoded.tokens) == 100
        for sent, received in zip(tokens, decoded.tokens):
            assert received.item == sent.item
            assert received.queue_hint == sent.queue_hint
            np.testing.assert_array_equal(received.h, sent.h)

    def test_empty_envelope_round_trip(self):
        decoded = wire.decode(wire.encode_tokens([], 5))
        assert decoded.tokens == []

    def test_decoded_payload_is_writable(self):
        """Receivers mutate h_j in place; a read-only buffer view would
        crash the SGD kernel."""
        (token,) = make_tokens(1, k=4)
        decoded = wire.decode(wire.encode_tokens([token], 4))
        decoded.tokens[0].h[0] = 42.0  # must not raise

    def test_truncated_frame_rejected(self):
        body = wire.encode_tokens(make_tokens(3, k=4), 4)
        for cut in (len(body) - 1, len(body) - 20, 5, 3):
            with pytest.raises(WireError, match="truncated"):
                wire.decode(body[:cut])

    def test_trailing_garbage_rejected(self):
        body = wire.encode_tokens(make_tokens(2, k=4), 4)
        with pytest.raises(WireError, match="trailing"):
            wire.decode(body + b"\x00")

    def test_bad_magic_rejected(self):
        body = bytearray(wire.encode_tokens(make_tokens(1, k=4), 4))
        body[0:2] = b"XX"
        with pytest.raises(WireError, match="magic"):
            wire.decode(bytes(body))

    def test_version_skew_rejected(self):
        body = bytearray(wire.encode_tokens(make_tokens(1, k=4), 4))
        body[2] = wire.WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            wire.decode(bytes(body))

    def test_unknown_kind_rejected(self):
        body = bytearray(wire.encode_stop())
        body[3] = 250
        with pytest.raises(WireError, match="kind"):
            wire.decode(bytes(body))

    def test_wrong_payload_shape_rejected(self):
        token = wire.Token(item=0, queue_hint=0, h=np.zeros(3))
        with pytest.raises(WireError, match="shape"):
            wire.encode_tokens([token], 4)


class TestCostModelConsistency:
    """The real envelope and the simulator's §3.2 cost model must agree."""

    @pytest.mark.parametrize("k", [1, 8, 32, 100])
    @pytest.mark.parametrize("batch", [1, 7, 100])
    def test_envelope_size_matches_token_bytes(self, k, batch):
        body = wire.encode_tokens(make_tokens(batch, k), k)
        assert len(body) == (
            wire.ENVELOPE_OVERHEAD_BYTES + batch * token_bytes(k)
        )

    def test_per_token_overhead_matches_simulator_constant(self):
        from repro.simulator import network

        assert wire.TOKEN_OVERHEAD_BYTES == network._TOKEN_OVERHEAD_BYTES


class TestControlFrames:
    def test_ready_round_trip(self):
        decoded = wire.decode(wire.encode_ready(3, 51234))
        assert decoded == wire.Ready(worker_id=3, port=51234)

    def test_peers_round_trip(self):
        ports = {0: 50001, 1: 50002, 5: 50010}
        decoded = wire.decode(wire.encode_peers(ports))
        assert decoded == wire.Peers(ports=ports)

    def test_stop_and_fin_round_trip(self):
        assert isinstance(wire.decode(wire.encode_stop()), wire.Stop)
        assert wire.decode(wire.encode_fin(2)) == wire.Fin(worker_id=2)

    def test_fin_telemetry_round_trip(self):
        blob = b"NT\x01" + b'{"worker_id": 3}'
        decoded = wire.decode(wire.encode_fin(3, telemetry=blob))
        assert decoded == wire.Fin(worker_id=3, telemetry=blob)

    def test_fin_telemetry_truncation_rejected(self):
        frame = wire.encode_fin(1, telemetry=b"x" * 64)
        for cut in (len(frame) - 1, len(frame) - 40, len(frame) - 66):
            with pytest.raises(WireError, match="truncated"):
                wire.decode(frame[:cut])

    def test_legacy_fin_without_payload_decodes_none(self):
        """Version skew: a pre-telemetry Fin frame (no trailing block)
        must keep decoding, with telemetry absent rather than an error."""
        legacy = wire.encode_fin(4)
        decoded = wire.decode(legacy)
        assert decoded.worker_id == 4
        assert decoded.telemetry is None

    def test_result_round_trip(self):
        rng = np.random.default_rng(5)
        rows = np.array([4, 9, 17], dtype=np.int64)
        w = rng.standard_normal((3, 6))
        held = make_tokens(4, k=6, seed=1)
        decoded = wire.decode(
            wire.encode_result(2, 12345, rows, w, held, 6)
        )
        assert isinstance(decoded, wire.ResultShard)
        assert decoded.worker_id == 2
        assert decoded.updates == 12345
        assert decoded.k == 6
        np.testing.assert_array_equal(decoded.rows, rows)
        np.testing.assert_array_equal(decoded.w, w)
        assert len(decoded.held) == 4
        np.testing.assert_array_equal(decoded.held[2].h, held[2].h)

    def test_result_shape_mismatch_rejected(self):
        with pytest.raises(WireError, match="shape"):
            wire.encode_result(
                0, 1, np.array([1, 2]), np.zeros((3, 4)), [], 4
            )


class TestLoopbackTransport:
    def test_send_recv(self):
        hub = LoopbackHub()
        a = hub.transport(0)
        b = hub.transport(1)
        a.send(1, b"hello")
        assert b.recv(timeout=1.0) == b"hello"

    def test_recv_timeout_returns_none(self):
        hub = LoopbackHub()
        a = hub.transport(0)
        assert a.recv(timeout=0.01) is None
        assert a.recv(timeout=0.0) is None

    def test_payload_isolated_from_sender(self):
        hub = LoopbackHub()
        a = hub.transport(0)
        b = hub.transport(1)
        payload = bytearray(b"abc")
        a.send(1, payload)
        payload[0] = 0
        assert b.recv(timeout=1.0) == b"abc"

    def test_unknown_destination_rejected(self):
        hub = LoopbackHub()
        a = hub.transport(0)
        with pytest.raises(ClusterError, match="no node"):
            a.send(9, b"x")


class TestTcpTransport:
    def test_send_recv_between_nodes(self):
        with TcpTransport(0) as a, TcpTransport(1) as b:
            a.register_peer(1, "127.0.0.1", b.port)
            b.register_peer(0, "127.0.0.1", a.port)
            a.send(1, b"ping")
            assert b.recv(timeout=2.0) == b"ping"
            b.send(0, b"pong")
            assert a.recv(timeout=2.0) == b"pong"

    def test_frames_preserve_boundaries_and_order(self):
        """Several frames on one connection come out intact, in order."""
        with TcpTransport(0) as a, TcpTransport(COORDINATOR) as c:
            a.register_peer(COORDINATOR, "127.0.0.1", c.port)
            frames = [bytes([i]) * (i + 1) for i in range(20)]
            for frame in frames:
                a.send(COORDINATOR, frame)
            received = [c.recv(timeout=2.0) for _ in frames]
            assert received == frames

    def test_wire_messages_over_tcp(self):
        tokens = make_tokens(10, k=4)
        with TcpTransport(0) as a, TcpTransport(1) as b:
            a.register_peer(1, "127.0.0.1", b.port)
            a.send(1, wire.encode_tokens(tokens, 4))
            decoded = wire.decode(b.recv(timeout=2.0))
            assert [t.item for t in decoded.tokens] == list(range(10))

    def test_unregistered_peer_rejected(self):
        with TcpTransport(0) as a:
            with pytest.raises(ClusterError, match="no address"):
                a.send(7, b"x")

    def test_oversized_frame_rejected_at_send(self):
        """Receivers drop oversized frames as corruption, so the sender
        must fail loudly instead of letting the loss surface later as a
        bogus 'worker died' timeout."""
        from repro.cluster.transport import MAX_FRAME_BYTES

        with TcpTransport(0) as a, TcpTransport(1) as b:
            a.register_peer(1, "127.0.0.1", b.port)
            with pytest.raises(ClusterError, match="MAX_FRAME_BYTES"):
                a.send(1, bytes(MAX_FRAME_BYTES + 1))

    def test_recv_timeout_returns_none(self):
        with TcpTransport(0) as a:
            assert a.recv(timeout=0.01) is None
