"""Tests for the nomadlint static-analysis subsystem (rule registry,
fixture suite, suppressions, baseline ratchet, reporters, and the CLI
surfaces)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, ratchet, write_baseline
from repro.analysis.context import ModuleContext
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import (
    HYGIENE_TIER,
    INVARIANT_TIER,
    META_CODE_MALFORMED_SUPPRESSION,
    RULES,
    Rule,
    ensure_rules_loaded,
    register_rule,
    rules_table,
)
from repro.analysis.runner import analyze_paths, iter_python_files
from repro.analysis.runner import main as analysis_main
from repro.analysis.suppressions import (
    apply_suppressions,
    collect_suppressions,
)
from repro.cli import main as cli_main
from repro.errors import AnalysisError, ReproError

FIXTURES = Path(__file__).parent / "analysis_fixtures"

ALL_CODES = (
    "NMD001",
    "NMD002",
    "NMD003",
    "NMD004",
    "NMD005",
    "NMD006",
    "NMD101",
    "NMD102",
    "NMD103",
    "NMD104",
)

#: rule code -> (flagged fixture, expected finding count, clean fixture)
FIXTURE_PAIRS = {
    "NMD001": ("runtime/nmd001_flagged.py", 3, "runtime/nmd001_clean.py"),
    "NMD002": ("nmd002_flagged.py", 1, "nmd002_clean.py"),
    "NMD003": ("nmd003_flagged.py", 2, "nmd003_clean.py"),
    "NMD004": ("nmd004_flagged.py", 2, "nmd004_clean.py"),
    "NMD005": ("runtime/nmd005_flagged.py", 2, "runtime/nmd005_clean.py"),
    "NMD006": ("runtime/nmd006_flagged.py", 2, "runtime/nmd006_clean.py"),
    "NMD101": ("nmd101_flagged.py", 2, "nmd101_clean.py"),
    "NMD102": ("nmd102_flagged.py", 3, "nmd102_clean.py"),
    "NMD103": ("nmd103_flagged.py", 3, "nmd103_clean.py"),
    "NMD104": ("runtime/nmd104_flagged.py", 2, "runtime/multiprocess.py"),
}


def codes_of(report):
    return sorted(f.code for f in report.ratchet.new)


def analyze_fixture(name):
    return analyze_paths([str(FIXTURES / name)])


# ---------------------------------------------------------------------------
# Rule registry


class TestRegistry:
    def test_all_rules_registered(self):
        ensure_rules_loaded()
        assert set(ALL_CODES) <= set(RULES)

    def test_tiers_match_code_ranges(self):
        ensure_rules_loaded()
        for code, rule in RULES.items():
            number = int(code[3:])
            expected = INVARIANT_TIER if number < 100 else HYGIENE_TIER
            assert rule.tier == expected, code

    def test_duplicate_code_rejected(self):
        ensure_rules_loaded()

        with pytest.raises(AnalysisError, match="already registered"):

            @register_rule
            class Clash(Rule):
                code = "NMD001"
                name = "clash"
                description = "duplicate code"

    def test_malformed_code_rejected(self):
        with pytest.raises(AnalysisError, match="malformed code"):

            @register_rule
            class Bad(Rule):
                code = "NMD1"
                name = "bad"
                description = "short code"

    def test_meta_code_reserved(self):
        with pytest.raises(AnalysisError, match="reserved"):

            @register_rule
            class Meta(Rule):
                code = META_CODE_MALFORMED_SUPPRESSION
                name = "meta"
                description = "framework-only code"

    def test_name_and_description_required(self):
        with pytest.raises(AnalysisError, match="name and a description"):

            @register_rule
            class Nameless(Rule):
                code = "NMD999"

    def test_rules_table_lists_every_rule(self):
        rows = list(rules_table())
        assert [row[0] for row in rows] == sorted(RULES)
        for code, name, tier, description in rows:
            assert name and description
            assert tier in (INVARIANT_TIER, HYGIENE_TIER)


# ---------------------------------------------------------------------------
# Fixture suite: one flagged + one clean fixture per rule


class TestFixtures:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_flagged_fixture_fires(self, code):
        flagged, count, _ = FIXTURE_PAIRS[code]
        report = analyze_fixture(flagged)
        assert codes_of(report) == [code] * count

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_clean_fixture_is_silent(self, code):
        _, _, clean = FIXTURE_PAIRS[code]
        report = analyze_fixture(clean)
        assert codes_of(report) == []
        assert report.exit_code == 0


class TestHttpServerAcquisition:
    """NMD004 extension for repro.serve: an HTTP server binds its
    listening socket at construction, so acquiring one without a close
    path leaks the socket like any raw ``socket.create_server``."""

    def test_flagged_http_fixture_fires(self):
        report = analyze_fixture("nmd004_http_flagged.py")
        assert codes_of(report) == ["NMD004", "NMD004"]
        symbols = {f.symbol for f in report.ratchet.new}
        assert symbols == {"LeakyService.__init__", "serve_once"}

    def test_clean_http_fixture_is_silent(self):
        report = analyze_fixture("nmd004_http_clean.py")
        assert codes_of(report) == []
        assert report.exit_code == 0


class TestAcceptanceCriteria:
    """The two regressions the checker exists to make unrepresentable."""

    def test_nmd003_catches_the_shared_memory_leak(self):
        # nmd003_flagged.py reproduces the MultiprocessNomad leak fixed
        # in PR 4: blocks closed in the finally but never unlinked.
        report = analyze_fixture("nmd003_flagged.py")
        assert codes_of(report) == ["NMD003", "NMD003"]
        assert report.exit_code == 1

    def test_nmd001_catches_non_owner_factor_write(self):
        report = analyze_fixture("runtime/nmd001_flagged.py")
        symbols = {f.symbol for f in report.ratchet.new}
        assert symbols == {"rebalance", "sneaky_update", "sneaky_batch"}
        # The owner-guarded write in worker() is not flagged.
        assert "worker" not in symbols

    def test_nmd001_respects_owner_declaration(self, tmp_path):
        # Without a __nomad_owner_contexts__ declaration every factor
        # write in a substrate module is flagged — new substrates must
        # declare their owner contexts to write at all.
        runtime = tmp_path / "runtime"
        runtime.mkdir()
        mod = runtime / "undeclared.py"
        mod.write_text(
            "def worker(h, token, payload):\n"
            "    h[token.item] = payload\n"
        )
        report = analyze_paths([str(mod)])
        assert codes_of(report) == ["NMD001"]


# ---------------------------------------------------------------------------
# Suppressions


def module_from(tmp_path, source, name="scratch.py"):
    path = tmp_path / name
    path.write_text(source)
    return ModuleContext(str(path), source)


class TestSuppressions:
    def test_reasoned_suppressions_silence_findings(self):
        report = analyze_fixture("suppressed_ok.py")
        assert codes_of(report) == []
        assert report.exit_code == 0
        silenced = sorted(f.code for f, _ in report.suppressed)
        assert silenced == ["NMD101", "NMD102", "NMD102", "NMD102"]
        for _, suppression in report.suppressed:
            assert suppression.reason

    def test_reasonless_suppression_is_nmd000_and_does_not_silence(self):
        report = analyze_fixture("suppressed_no_reason.py")
        codes = codes_of(report)
        # Both malformed markers surface, and the underlying findings
        # stay live.
        assert codes.count("NMD000") == 2
        assert "NMD101" in codes
        assert "NMD102" in codes
        assert report.suppressed == []

    def test_multi_code_comment_parses_every_code(self, tmp_path):
        module = module_from(
            tmp_path,
            "x = 1  # nomadlint: ignore[NMD101, NMD102]: two codes, one"
            " comment\n",
        )
        suppressions, malformed = collect_suppressions(module)
        assert malformed == []
        (sup,) = suppressions
        assert sup.codes == frozenset({"NMD101", "NMD102"})
        assert sup.reason == "two codes, one comment"
        assert sup.target_line == 1

    def test_standalone_comment_targets_next_statement(self, tmp_path):
        module = module_from(
            tmp_path,
            "# nomadlint: ignore[NMD005]: scratch harness, not a runtime\n"
            "\n"
            "# an unrelated comment\n"
            "import time\n",
        )
        (sup,) = collect_suppressions(module)[0]
        assert sup.line == 1
        assert sup.target_line == 4

    def test_invalid_code_is_malformed(self, tmp_path):
        module = module_from(
            tmp_path, "x = 1  # nomadlint: ignore[BOGUS]: nope\n"
        )
        suppressions, malformed = collect_suppressions(module)
        assert suppressions == []
        (finding,) = malformed
        assert finding.code == "NMD000"
        assert "invalid rule code" in finding.message

    def test_nmd000_itself_cannot_be_suppressed(self, tmp_path):
        module = module_from(
            tmp_path, "x = 1  # nomadlint: ignore[NMD000]: silence the cop\n"
        )
        suppressions, malformed = collect_suppressions(module)
        assert suppressions == []
        (finding,) = malformed
        assert "cannot be suppressed" in finding.message

    def test_suppression_only_matches_its_line_and_codes(self, tmp_path):
        module = module_from(
            tmp_path,
            "def f(b=[]):  # nomadlint: ignore[NMD101]: wrong code on"
            " purpose\n"
            "    return b\n",
        )
        ensure_rules_loaded()
        from repro.analysis.rules import run_rules

        findings = run_rules(module)
        suppressions, _ = collect_suppressions(module)
        live, silenced = apply_suppressions(findings, suppressions)
        assert [f.code for f in live] == ["NMD102"]
        assert silenced == []

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        module = module_from(
            tmp_path,
            '"""Docs showing # nomadlint: ignore[NMD001] syntax."""\n'
            "x = 1\n",
        )
        suppressions, malformed = collect_suppressions(module)
        assert suppressions == []
        assert malformed == []


# ---------------------------------------------------------------------------
# Baseline ratchet


VIOLATION = "def collect(item, bucket=[]):\n    return bucket\n"


class TestBaselineRatchet:
    def test_baselined_finding_passes(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        first = analyze_paths([str(mod)])
        write_baseline(str(baseline_path), first.ratchet.new)

        report = analyze_paths(
            [str(mod)], baseline=load_baseline(str(baseline_path))
        )
        assert report.exit_code == 0
        assert [f.code for f in report.ratchet.baselined] == ["NMD102"]
        assert report.ratchet.stale == []

    def test_new_finding_fails(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            str(baseline_path), analyze_paths([str(mod)]).ratchet.new
        )

        mod.write_text(VIOLATION + "def index(pairs, table={}):\n    return table\n")
        report = analyze_paths(
            [str(mod)], baseline=load_baseline(str(baseline_path))
        )
        assert report.exit_code == 1
        assert len(report.ratchet.new) == 1
        assert report.ratchet.new[0].symbol == "index"
        assert len(report.ratchet.baselined) == 1

    def test_removed_finding_is_stale_and_update_shrinks(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            str(baseline_path), analyze_paths([str(mod)]).ratchet.new
        )

        mod.write_text("def collect(item, bucket=None):\n    return bucket\n")
        report = analyze_paths(
            [str(mod)], baseline=load_baseline(str(baseline_path))
        )
        assert report.exit_code == 0
        assert len(report.ratchet.stale) == 1

        # --update-baseline rewrites from current findings: the file
        # shrinks to empty.
        rewritten = write_baseline(str(baseline_path), report.ratchet.new)
        assert rewritten.entries == []
        assert load_baseline(str(baseline_path)).entries == []

    def test_fingerprint_survives_line_drift(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            str(baseline_path), analyze_paths([str(mod)]).ratchet.new
        )

        # Push the violation down the file; the fingerprint hashes the
        # line's text, not its number, so it stays baselined.
        mod.write_text('"""A new docstring."""\n\nX = 1\n\n' + VIOLATION)
        report = analyze_paths(
            [str(mod)], baseline=load_baseline(str(baseline_path))
        )
        assert report.exit_code == 0
        assert len(report.ratchet.baselined) == 1

    def test_duplicate_of_baselined_violation_is_new(self, tmp_path):
        # Multiset semantics: a second identical copy of a baselined
        # line is NOT covered by the single baseline entry.
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            str(baseline_path), analyze_paths([str(mod)]).ratchet.new
        )

        mod.write_text(
            "def collect(item, bucket=[]):\n"
            "    return bucket\n"
            "def collect2(item, bucket=[]):\n"
            "    return bucket\n"
        )
        report = analyze_paths(
            [str(mod)], baseline=load_baseline(str(baseline_path))
        )
        assert report.exit_code == 1
        assert len(report.ratchet.new) == 1
        assert len(report.ratchet.baselined) == 1

    def test_missing_baseline_is_an_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="--update-baseline"):
            load_baseline(str(tmp_path / "absent.json"))

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"tool": "other"}, "not a nomadlint baseline"),
            ({"tool": "nomadlint", "version": 99}, "version"),
            (
                {"tool": "nomadlint", "version": 1, "findings": [{"x": 1}]},
                "malformed",
            ),
        ],
    )
    def test_bad_baseline_rejected(self, tmp_path, payload, match):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(AnalysisError, match=match):
            load_baseline(str(path))

    def test_ratchet_without_baseline_marks_everything_new(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        report = analyze_paths([str(mod)])
        assert report.exit_code == 1
        outcome = ratchet(report.ratchet.new, None)
        assert outcome.baselined == [] and outcome.stale == []


# ---------------------------------------------------------------------------
# Reporters


class TestReporters:
    def make_report(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            VIOLATION
            + "def ok(x, b=[]):  # nomadlint: ignore[NMD102]: demo\n"
            "    return b\n"
        )
        return analyze_paths([str(mod)])

    def test_json_schema_is_stable(self, tmp_path):
        payload = json.loads(render_json(self.make_report(tmp_path)))
        # Pinned key sets: consumers parse this schema, so keys are only
        # ever added (with a version bump), never renamed or dropped.
        assert set(payload) == {
            "tool",
            "version",
            "findings",
            "suppressed",
            "stale_baseline",
            "summary",
        }
        assert payload["tool"] == "nomadlint"
        assert payload["version"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code",
            "message",
            "path",
            "line",
            "col",
            "symbol",
            "fingerprint",
            "status",
        }
        assert finding["status"] == "new"
        (suppressed,) = payload["suppressed"]
        assert set(suppressed) == set(finding) | {
            "reason",
            "suppression_line",
        }
        assert suppressed["status"] == "suppressed"
        assert set(payload["summary"]) == {
            "files",
            "new",
            "baselined",
            "suppressed",
            "stale_baseline",
        }

    def test_text_report_mentions_code_and_verdict(self, tmp_path):
        text = render_text(self.make_report(tmp_path))
        assert "NMD102" in text
        assert "FAIL" in text
        assert "suppressed — demo" in text

    def test_clean_text_report_says_ok(self):
        report = analyze_fixture("nmd102_clean.py")
        assert render_text(report).strip().endswith("ok")


# ---------------------------------------------------------------------------
# CLI surfaces: repro-nomad analyze and python -m repro.analysis


class TestCli:
    def test_analyze_update_then_pass_then_fail(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        baseline = tmp_path / "baseline.json"

        assert (
            cli_main(
                [
                    "analyze",
                    "--update-baseline",
                    "--baseline",
                    str(baseline),
                    str(mod),
                ]
            )
            == 0
        )
        assert cli_main(
            ["analyze", "--baseline", str(baseline), str(mod)]
        ) == 0

        mod.write_text(VIOLATION + "def g(t={}):\n    return t\n")
        assert cli_main(
            ["analyze", "--baseline", str(baseline), str(mod)]
        ) == 1
        capsys.readouterr()

    def test_analyze_json_format(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        code = cli_main(["analyze", "--format", "json", str(mod)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "nomadlint"
        assert payload["summary"]["new"] == 1

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        code = cli_main(
            ["analyze", "--baseline", str(tmp_path / "nope.json"), str(mod)]
        )
        assert code == 2
        capsys.readouterr()

    def test_module_entry_point_matches_cli(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        assert analysis_main([str(mod)]) == 1
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ALL_CODES:
            assert code in out

    def test_update_baseline_requires_baseline_path(self, capsys):
        assert analysis_main(["--update-baseline"]) == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_python_dash_m_entry(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(Path(__file__).parent.parent),
        )
        assert result.returncode == 0
        assert "NMD001" in result.stdout


# ---------------------------------------------------------------------------
# Repo invariants: the committed baseline and the live tree


class TestRepoState:
    def test_src_tree_is_clean_against_committed_baseline(self):
        repo = Path(__file__).parent.parent
        baseline = load_baseline(str(repo / "results" / "analysis_baseline.json"))
        report = analyze_paths([str(repo / "src")], baseline=baseline)
        assert report.exit_code == 0, render_text(report)
        assert report.ratchet.stale == []

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["a.py"]

    def test_missing_path_is_an_error(self):
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files(["definitely/not/a/path"])

    def test_analysis_error_is_a_repro_error(self):
        assert issubclass(AnalysisError, ReproError)
