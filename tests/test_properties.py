"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serializability import UpdateEvent, is_serializable
from repro.datasets.distributions import degrees_to_pair_sample
from repro.datasets.ratings import RatingMatrix, train_test_split
from repro.linalg.kernels import sgd_process_column, sgd_process_column_fast
from repro.partition.partitioners import (
    partition_rows_equal_count,
    partition_rows_equal_ratings,
)
from repro.rng import RngFactory
from repro.schedules.step_size import NomadSchedule
from repro.simulator.events import EventQueue

# Simulation-heavy modules draw from seeded numpy generators inside the
# strategies; function-scoped fixtures are not reused across examples.
RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def rating_matrices(draw):
    """Random small rating matrices with at least one entry per row/col."""
    n_rows = draw(st.integers(min_value=2, max_value=20))
    n_cols = draw(st.integers(min_value=2, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    dense = rng.random((n_rows, n_cols))
    mask = rng.random((n_rows, n_cols)) < density
    # guarantee coverage
    for i in range(n_rows):
        mask[i, rng.integers(0, n_cols)] = True
    for j in range(n_cols):
        mask[rng.integers(0, n_rows), j] = True
    rows, cols = np.nonzero(mask)
    return RatingMatrix(n_rows, n_cols, rows, cols, dense[rows, cols])


class TestPartitionProperties:
    @RELAXED
    @given(
        n_rows=st.integers(min_value=1, max_value=500),
        p=st.integers(min_value=1, max_value=32),
    )
    def test_equal_count_partition_is_exact(self, n_rows, p):
        if n_rows < p:
            return
        sets = partition_rows_equal_count(n_rows, p)
        combined = np.concatenate(sets)
        assert len(sets) == p
        assert sorted(combined.tolist()) == list(range(n_rows))
        sizes = [s.size for s in sets]
        assert max(sizes) - min(sizes) <= 1

    @RELAXED
    @given(matrix=rating_matrices(), p=st.integers(min_value=1, max_value=8))
    def test_equal_ratings_partition_covers(self, matrix, p):
        if matrix.n_rows < p:
            return
        sets = partition_rows_equal_ratings(matrix, p)
        combined = np.concatenate(sets)
        assert sorted(combined.tolist()) == list(range(matrix.n_rows))
        assert all(s.size >= 1 for s in sets)


class TestShardProperties:
    @RELAXED
    @given(matrix=rating_matrices(), p=st.integers(min_value=1, max_value=6))
    def test_shards_preserve_every_rating(self, matrix, p):
        if matrix.n_rows < p:
            return
        partition = partition_rows_equal_count(matrix.n_rows, p)
        shards = matrix.shard_by_rows(partition)
        assert sum(shard.nnz for shard in shards) == matrix.nnz
        for j in range(matrix.n_cols):
            users_global = set(matrix.users_of_item(j)[0].tolist())
            users_sharded = set()
            for shard in shards:
                users_sharded |= set(shard.column(j)[0].tolist())
            assert users_sharded == users_global


class TestSplitProperties:
    @RELAXED
    @given(
        matrix=rating_matrices(),
        fraction=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_split_partitions_ratings(self, matrix, fraction, seed):
        expected_test = int(round(matrix.nnz * fraction))
        if expected_test == 0 or expected_test == matrix.nnz:
            return
        rng = RngFactory(seed).stream("prop-split")
        train, test = train_test_split(matrix, fraction, rng)
        assert train.nnz + test.nnz == matrix.nnz
        train_pairs = set(zip(train.rows.tolist(), train.cols.tolist()))
        test_pairs = set(zip(test.rows.tolist(), test.cols.tolist()))
        assert not train_pairs & test_pairs
        all_pairs = set(zip(matrix.rows.tolist(), matrix.cols.tolist()))
        assert train_pairs | test_pairs == all_pairs


class TestScheduleProperties:
    @RELAXED
    @given(
        alpha=st.floats(min_value=1e-6, max_value=10.0),
        beta=st.floats(min_value=0.0, max_value=10.0),
        t=st.integers(min_value=0, max_value=10**6),
    )
    def test_nomad_schedule_positive_and_bounded(self, alpha, beta, t):
        step = NomadSchedule(alpha, beta).step(t)
        assert 0 < step <= alpha

    @RELAXED
    @given(
        alpha=st.floats(min_value=1e-6, max_value=10.0),
        beta=st.floats(min_value=1e-6, max_value=10.0),
    )
    def test_nomad_schedule_strictly_decreasing(self, alpha, beta):
        schedule = NomadSchedule(alpha, beta)
        previous = schedule.step(0)
        for t in (1, 2, 5, 10, 100):
            current = schedule.step(t)
            assert current < previous
            previous = current


class TestKernelProperties:
    @RELAXED
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        k=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=1, max_value=30),
    )
    def test_fast_and_ndarray_kernels_agree(self, seed, k, n):
        rng = np.random.default_rng(seed)
        m = 10
        w0 = rng.random((m, k))
        h0 = rng.random(k)
        rows = rng.integers(0, m, size=n)
        vals = rng.random(n)

        w_nd, h_nd = w0.copy(), h0.copy()
        counts_nd = np.zeros(n, dtype=np.int64)
        sgd_process_column(w_nd, h_nd, rows, vals, counts_nd, 0.1, 0.05, 0.02)

        w_l, h_l = w0.tolist(), h0.tolist()
        counts_l = [0] * n
        sgd_process_column_fast(
            w_l, h_l, rows.tolist(), vals.tolist(), counts_l, 0.1, 0.05, 0.02
        )
        assert np.allclose(np.asarray(w_l), w_nd, atol=1e-10)
        assert np.allclose(np.asarray(h_l), h_nd, atol=1e-10)

    @RELAXED
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_update_norm_bounded_with_regularization(self, seed):
        """With lambda > 0 and bounded data, factors cannot blow up in one
        well-conditioned pass."""
        rng = np.random.default_rng(seed)
        w = rng.random((5, 3)).tolist()
        h = rng.random(3).tolist()
        rows = rng.integers(0, 5, size=20).tolist()
        vals = (rng.random(20) * 2 - 1).tolist()
        sgd_process_column_fast(w, h, rows, vals, [0] * 20, 0.01, 0.0, 0.1)
        assert np.abs(np.asarray(w)).max() < 10
        assert np.abs(np.asarray(h)).max() < 10


class TestEventQueueProperties:
    @RELAXED
    @given(times=st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                          max_size=50))
    def test_pops_in_nondecreasing_time(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @RELAXED
    @given(n=st.integers(min_value=1, max_value=50))
    def test_equal_times_fifo(self, n):
        queue = EventQueue()
        events = [queue.push(1.0, lambda: None) for _ in range(n)]
        for expected in events:
            assert queue.pop() is expected


class TestSerializabilityProperties:
    @RELAXED
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_events=st.integers(min_value=1, max_value=200),
        n_rows=st.integers(min_value=1, max_value=10),
        n_cols=st.integers(min_value=1, max_value=10),
    )
    def test_fresh_logs_always_serializable(self, seed, n_events, n_rows, n_cols):
        """Any log of fresh (owner-computes) reads admits a serial order —
        commit order itself is one."""
        rng = np.random.default_rng(seed)
        events = [
            UpdateEvent(
                seq=i,
                worker=int(rng.integers(0, 4)),
                row=int(rng.integers(0, n_rows)),
                col=int(rng.integers(0, n_cols)),
                count=i,
            )
            for i in range(n_events)
        ]
        assert is_serializable(events)


class TestPairSampleProperties:
    @RELAXED
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_rows=st.integers(min_value=1, max_value=30),
        n_cols=st.integers(min_value=1, max_value=30),
    )
    def test_pairs_unique_and_in_range(self, seed, n_rows, n_cols):
        rng = np.random.default_rng(seed)
        row_degrees = rng.integers(1, 5, size=n_rows)
        col_degrees = rng.integers(1, 5, size=n_cols)
        rows, cols = degrees_to_pair_sample(row_degrees, col_degrees, rng)
        assert rows.size == cols.size > 0
        assert rows.min() >= 0 and rows.max() < n_rows
        assert cols.min() >= 0 and cols.max() < n_cols
        assert len(set(zip(rows.tolist(), cols.tolist()))) == rows.size
