"""Figure 13 (Appendix A): NOMAD across regularization strengths.

Paper shape: NOMAD converges reliably for every lambda; non-optimal
choices raise the achievable RMSE floor (over-regularization underfits).
"""

from __future__ import annotations


def test_fig13(run_figure):
    result = run_figure("fig13")
    for dataset in ("netflix", "yahoo", "hugewiki"):
        rows = {row["lambda"]: row for row in result.tables[f"lambda_{dataset}"]}
        # Reliable convergence at every lambda (no divergence, real progress).
        for lambda_, row in rows.items():
            trace = result.series[f"{dataset}/lambda={lambda_}"]
            assert row["best_rmse"] < trace.records[0].rmse * 0.6, (
                dataset, lambda_)
        # Over-regularization (lambda=0.3) has a worse floor than the tuned
        # small-lambda setting.
        assert rows[0.3]["best_rmse"] > rows[0.01]["best_rmse"], dataset
