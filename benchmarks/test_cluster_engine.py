"""Benchmark: socket cluster engine vs the shared-memory engine.

Runs NOMAD through ``repro.fit`` on the ``multiprocess`` (shared-memory
fork) and ``cluster`` (localhost TCP, spawn) engines at one fixed seed
and wall budget, and records updates/sec, final RMSE, and the timing
split to ``results/cluster_engine.json`` (BENCH json).  The gap between
the two engines is the measured price of real message passing — the
number §3.5's envelope batching exists to shrink — and the baseline any
future transport (multi-host, gossip) is judged against.

Run with the rest of the benchmark suite; scale via ``REPRO_BENCH_SCALE``
(``tiny`` shortens the timed window for smoke passes).
"""

from __future__ import annotations

import os

from conftest import write_bench_json

from repro.api import fit
from repro.config import RunConfig
from repro.experiments.harness import build_dataset

ENGINES_UNDER_TEST = ("multiprocess", "cluster")
N_WORKERS = 2
SEED = 0

#: Wall budget per engine, seconds.  The two engines stamp their wall
#: window differently at the startup edge (multiprocess counts fork +
#: process start inside it; cluster starts counting only after the
#: Ready/Peers bootstrap), so the window must stay large enough to
#: amortize those ~10-30ms — which is why ``tiny`` is not shorter.
_WINDOWS = {"tiny": 0.4, "small": 0.75, "medium": 1.5}


def test_cluster_engine_throughput(bench_env):
    """Record the cross-engine updates/sec comparison and sanity-check it."""
    results_dir, scale = bench_env
    window = _WINDOWS.get(scale, 0.5)
    profile, train, test = build_dataset("netflix", seed=SEED)
    run = RunConfig(duration=window, eval_interval=window, seed=SEED)

    cells = []
    for engine in ENGINES_UNDER_TEST:
        result = fit(
            train, test, algorithm="nomad", engine=engine,
            hyper=profile.hyper, run=run, n_workers=N_WORKERS,
        )
        timing = result.timing
        cells.append(
            {
                "engine": engine,
                "updates_per_sec": round(timing.updates_per_second, 1),
                "updates": timing.updates,
                "wall_seconds": round(timing.wall_seconds, 4),
                "join_seconds": round(timing.join_seconds, 4),
                "final_rmse": round(result.final_rmse(), 4),
            }
        )

    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "cluster_engine.json")
    payload = {
        "benchmark": "cluster_engine",
        "unit": "updates_per_sec",
        "caveat": (
            "wall windows differ at the startup edge: multiprocess "
            "includes fork+start, cluster excludes its spawn bootstrap; "
            "windows are sized so this skews updates_per_sec by <~5%"
        ),
        "scale": scale,
        "n_workers": N_WORKERS,
        "seed": SEED,
        "dataset": "netflix-surrogate",
        "results": cells,
    }
    write_bench_json(path, payload)

    print()
    header = (
        f"{'engine':>14} {'upd/s':>12} {'updates':>10} "
        f"{'wall':>7} {'join':>7} {'rmse':>7}"
    )
    print(header)
    for cell in cells:
        print(
            f"{cell['engine']:>14} {cell['updates_per_sec']:>12,.0f} "
            f"{cell['updates']:>10,} {cell['wall_seconds']:>7.3f} "
            f"{cell['join_seconds']:>7.3f} {cell['final_rmse']:>7.4f}"
        )

    assert len(cells) == len(ENGINES_UNDER_TEST)
    assert all(cell["updates_per_sec"] > 0 for cell in cells)
