"""Micro-benchmark: updates/sec per kernel backend per latent dimension.

Times the two hot kernel variants (NOMAD's column loop and the baselines'
entries loop) plus the fused column-batch entry point on each *usable*
registered backend for k ∈ {8, 32, 100} and records the updates/sec
matrix to ``results/kernel_backends.json`` (BENCH json, deterministic
key order).  This is the perf baseline future backends (numba, Cython,
GPU) and the ``AUTO_NUMPY_MIN_K`` auto-selection crossover are judged
against; the compiled ``cext`` backend is benchmarked whenever a C
toolchain is present (and must beat the best interpreted backend by
>= 10x on the column kernel at every k — the acceptance bar of the
compiled-kernel work).

Run with the rest of the benchmark suite; scale via ``REPRO_BENCH_SCALE``
(``tiny`` shortens the timed window for smoke passes).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import write_bench_json

from repro.linalg.backends import BACKENDS, cext_available, get_backend
from repro.linalg.factors import FactorPair

LATENT_DIMS = [8, 32, 100]
N_USERS = 400
NNZ = 256
#: Columns per fused process_column_batch call.
BATCH_COLS = 8
ALPHA, BETA, LAMBDA = 0.012, 0.05, 0.05

#: Minimum timed window per (backend, variant, k) cell, seconds.
_WINDOWS = {"tiny": 0.01, "small": 0.05, "medium": 0.2}

VARIANTS = ("column", "column_batch", "entries")

#: Factor of the compiled backend's required lead over the best
#: interpreted backend on the column kernel.
CEXT_SPEEDUP_FLOOR = 10.0


def _usable_backends() -> list[str]:
    return [
        name
        for name in sorted(BACKENDS)
        if name != "cext" or cext_available()
    ]


def _fixture(k: int):
    rng = np.random.default_rng(k)
    w = rng.random((N_USERS, k)) / np.sqrt(k)
    h = rng.random((max(NNZ // 4, 2), k)) / np.sqrt(k)
    users = rng.integers(0, N_USERS, size=NNZ)
    cols = rng.integers(0, h.shape[0], size=NNZ)
    vals = rng.random(NNZ) * 4.0
    order = rng.permutation(NNZ)
    return FactorPair(w, h), users, cols, vals, order


def _rate(run_once, window: float) -> float:
    """Calibrated updates/sec of one kernel invocation closure."""
    run_once()  # warm-up
    updates = 0
    started = time.perf_counter()
    while time.perf_counter() - started < window:
        updates += run_once()
    elapsed = time.perf_counter() - started
    return updates / elapsed


def _bench_backend(name: str, k: int, window: float) -> dict[str, float]:
    backend = get_backend(name)
    pair, users, cols, vals, order = _fixture(k)
    w, h = backend.make_store(pair)
    if isinstance(w, list):
        users_arg, cols_arg = users.tolist(), cols.tolist()
        vals_arg, order_arg = vals.tolist(), order.tolist()
    else:
        users_arg, cols_arg, vals_arg, order_arg = users, cols, vals, order
    counts_col = [0] * NNZ if isinstance(w, list) else np.zeros(NNZ, np.int64)
    counts_ent = [0] * NNZ if isinstance(w, list) else np.zeros(NNZ, np.int64)
    h_col = backend.row(h, 0)

    # The fused variant runs the same NNZ entries as one call over
    # BATCH_COLS columns (distinct h rows, disjoint slices of the users/
    # ratings/counts arrays), mirroring a drained token burst.
    per_col = NNZ // BATCH_COLS
    bounds = [(j * per_col, (j + 1) * per_col) for j in range(BATCH_COLS)]
    batch_h = [backend.row(h, j % (NNZ // 4)) for j in range(BATCH_COLS)]
    batch_users = [users_arg[lo:hi] for lo, hi in bounds]
    batch_vals = [vals_arg[lo:hi] for lo, hi in bounds]
    batch_counts = [counts_col[lo:hi] for lo, hi in bounds]

    def column_once():
        return backend.process_column(
            w, h_col, users_arg, vals_arg, counts_col, ALPHA, BETA, LAMBDA
        )

    def column_batch_once():
        return backend.process_column_batch(
            w, batch_h, batch_users, batch_vals, batch_counts,
            ALPHA, BETA, LAMBDA,
        )

    def entries_once():
        return backend.process_entries(
            w, h, users_arg, cols_arg, vals_arg, counts_ent,
            ALPHA, BETA, LAMBDA, order_arg,
        )

    return {
        "column": _rate(column_once, window),
        "column_batch": _rate(column_batch_once, window),
        "entries": _rate(entries_once, window),
    }


def test_kernel_backend_throughput(bench_env):
    """Record the updates/sec comparison and sanity-check every cell."""
    results_dir, scale = bench_env
    window = _WINDOWS.get(scale, 0.05)
    names = _usable_backends()
    cells = []
    for k in LATENT_DIMS:
        for name in names:
            rates = _bench_backend(name, k, window)
            for variant, rate in rates.items():
                cells.append(
                    {
                        "backend": name,
                        "variant": variant,
                        "k": k,
                        "updates_per_sec": round(rate, 1),
                    }
                )

    path = os.path.join(results_dir, "kernel_backends.json")
    payload = {
        "benchmark": "kernel_backends",
        "unit": "updates_per_sec",
        "scale": scale,
        "n_users": N_USERS,
        "nnz": NNZ,
        "batch_cols": BATCH_COLS,
        "results": cells,
    }
    write_bench_json(path, payload)

    def rate_of(name: str, variant: str, k: int) -> float:
        return next(
            cell["updates_per_sec"]
            for cell in cells
            if cell["backend"] == name
            and cell["variant"] == variant
            and cell["k"] == k
        )

    print()
    print(f"{'backend':>8} {'variant':>12} " +
          " ".join(f"k={k:<10}" for k in LATENT_DIMS))
    for name in names:
        for variant in VARIANTS:
            row = [rate_of(name, variant, k) for k in LATENT_DIMS]
            print(f"{name:>8} {variant:>12} " +
                  " ".join(f"{rate:<12,.0f}" for rate in row))

    assert all(cell["updates_per_sec"] > 0 for cell in cells)
    assert len(cells) == len(LATENT_DIMS) * len(names) * len(VARIANTS)

    if "cext" in names:
        # The compiled backend's acceptance bar: >= 10x the best
        # interpreted backend on the column kernel at every k.
        for k in LATENT_DIMS:
            interpreted = max(
                rate_of(name, "column", k)
                for name in names
                if name != "cext"
            )
            compiled = rate_of("cext", "column", k)
            assert compiled >= CEXT_SPEEDUP_FLOOR * interpreted, (
                f"cext column kernel at k={k}: {compiled:,.0f} upd/s is "
                f"less than {CEXT_SPEEDUP_FLOOR}x the best interpreted "
                f"rate {interpreted:,.0f}"
            )
