"""Micro-benchmark: updates/sec per kernel backend per latent dimension.

Times the two hot kernel variants (NOMAD's column loop and the baselines'
entries loop) on each registered backend for k ∈ {8, 32, 100} and records
the updates/sec matrix to ``results/kernel_backends.json`` (BENCH json).
This is the perf baseline future backends (numba, Cython, GPU) and the
``AUTO_NUMPY_MIN_K`` auto-selection crossover are judged against.

Run with the rest of the benchmark suite; scale via ``REPRO_BENCH_SCALE``
(``tiny`` shortens the timed window for smoke passes).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.linalg.backends import BACKENDS, get_backend
from repro.linalg.factors import FactorPair

LATENT_DIMS = [8, 32, 100]
N_USERS = 400
NNZ = 256
ALPHA, BETA, LAMBDA = 0.012, 0.05, 0.05

#: Minimum timed window per (backend, variant, k) cell, seconds.
_WINDOWS = {"tiny": 0.01, "small": 0.05, "medium": 0.2}


def _fixture(k: int):
    rng = np.random.default_rng(k)
    w = rng.random((N_USERS, k)) / np.sqrt(k)
    h = rng.random((max(NNZ // 4, 2), k)) / np.sqrt(k)
    users = rng.integers(0, N_USERS, size=NNZ)
    cols = rng.integers(0, h.shape[0], size=NNZ)
    vals = rng.random(NNZ) * 4.0
    order = rng.permutation(NNZ)
    return FactorPair(w, h), users, cols, vals, order


def _rate(run_once, window: float) -> float:
    """Calibrated updates/sec of one kernel invocation closure."""
    run_once()  # warm-up
    updates = 0
    started = time.perf_counter()
    while time.perf_counter() - started < window:
        updates += run_once()
    elapsed = time.perf_counter() - started
    return updates / elapsed


def _bench_backend(name: str, k: int, window: float) -> dict[str, float]:
    backend = get_backend(name)
    pair, users, cols, vals, order = _fixture(k)
    w, h = backend.make_store(pair)
    if isinstance(w, list):
        users_arg, cols_arg = users.tolist(), cols.tolist()
        vals_arg, order_arg = vals.tolist(), order.tolist()
    else:
        users_arg, cols_arg, vals_arg, order_arg = users, cols, vals, order
    counts_col = [0] * NNZ if isinstance(w, list) else np.zeros(NNZ, np.int64)
    counts_ent = [0] * NNZ if isinstance(w, list) else np.zeros(NNZ, np.int64)
    h_col = backend.row(h, 0)

    def column_once():
        return backend.process_column(
            w, h_col, users_arg, vals_arg, counts_col, ALPHA, BETA, LAMBDA
        )

    def entries_once():
        return backend.process_entries(
            w, h, users_arg, cols_arg, vals_arg, counts_ent,
            ALPHA, BETA, LAMBDA, order_arg,
        )

    return {
        "column": _rate(column_once, window),
        "entries": _rate(entries_once, window),
    }


def test_kernel_backend_throughput(bench_env):
    """Record the updates/sec comparison and sanity-check every cell."""
    results_dir, scale = bench_env
    window = _WINDOWS.get(scale, 0.05)
    cells = []
    for k in LATENT_DIMS:
        for name in sorted(BACKENDS):
            rates = _bench_backend(name, k, window)
            for variant, rate in rates.items():
                cells.append(
                    {
                        "backend": name,
                        "variant": variant,
                        "k": k,
                        "updates_per_sec": round(rate, 1),
                    }
                )

    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "kernel_backends.json")
    payload = {
        "benchmark": "kernel_backends",
        "unit": "updates_per_sec",
        "scale": scale,
        "n_users": N_USERS,
        "nnz": NNZ,
        "results": cells,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(f"{'backend':>8} {'variant':>8} " +
          " ".join(f"k={k:<10}" for k in LATENT_DIMS))
    for name in sorted(BACKENDS):
        for variant in ("column", "entries"):
            row = [
                cell["updates_per_sec"]
                for cell in cells
                if cell["backend"] == name and cell["variant"] == variant
            ]
            print(f"{name:>8} {variant:>8} " +
                  " ".join(f"{rate:<12,.0f}" for rate in row))

    assert all(cell["updates_per_sec"] > 0 for cell in cells)
    assert len(cells) == len(LATENT_DIMS) * len(BACKENDS) * 2
