"""Figures 21-23 (Appendix F): NOMAD vs the GraphLab-style lock-server ALS.

Paper shape: NOMAD converges orders of magnitude faster in every
environment; the gap is widest on the commodity network, where every
read-lock costs a round trip.
"""

from __future__ import annotations

_THRESHOLDS = {"netflix": 0.30, "yahoo": 0.80}


def test_fig21_23(run_figure):
    result = run_figure("fig21_23")
    for dataset in ("netflix", "yahoo"):
        threshold = _THRESHOLDS[dataset]
        for environment in ("single", "hpc", "commodity"):
            nomad = result.series[f"{dataset}/{environment}/NOMAD"]
            graphlab = result.series[f"{dataset}/{environment}/GraphLab-ALS"]
            nomad_time = nomad.time_to_rmse(threshold)
            graphlab_time = graphlab.time_to_rmse(threshold)
            assert nomad_time is not None, (dataset, environment)
            # GraphLab either never reaches the threshold inside a window
            # 20x longer than NOMAD's, or takes at least 3x as long.
            if graphlab_time is not None:
                assert graphlab_time > 3 * nomad_time, (dataset, environment)
