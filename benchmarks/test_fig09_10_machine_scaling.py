"""Figures 9-10: NOMAD as a fixed dataset spreads over more machines.

Paper shape: near-linear scaling on Netflix and Hugewiki; on Yahoo! Music
per-worker throughput degrades as machines grow (items have too few local
ratings to amortize the hop), §5.3.
"""

from __future__ import annotations


def test_fig09_10(run_figure):
    result = run_figure("fig09_10")

    # Total throughput grows with machines on the compute-bound datasets.
    for dataset in ("netflix", "hugewiki"):
        totals = {
            machines: result.series[
                f"{dataset}/machines={machines}"
            ].total_updates()
            for machines in (1, 2, 4, 8)
        }
        assert totals[8] > 3 * totals[1], dataset
        assert totals[4] > 1.5 * totals[1], dataset

    # Yahoo: per-worker throughput at 8 machines is visibly below the
    # single-machine figure (communication-bound regime).
    yahoo = {
        row["config"]: row["updates_per_worker_per_sec"]
        for row in result.tables["throughput_yahoo"]
    }
    assert yahoo[8] < yahoo[1]

    # Convergence everywhere.
    for label, trace in result.series.items():
        assert trace.final_rmse() < trace.records[0].rmse, label
