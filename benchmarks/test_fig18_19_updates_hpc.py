"""Figures 18-19 (Appendix D): RMSE versus the number of updates on HPC.

Paper shape: convergence per *update* does not degrade as the worker count
grows — serializable updates carry no staleness penalty — and on Yahoo! it
improves slightly (smaller blocks circulate fresher item parameters).
"""

from __future__ import annotations


def test_fig18_19(run_figure):
    result = run_figure("fig18_19")
    rows = {
        row["config"]: row
        for row in result.tables["per_update_convergence"]
    }
    reached = {
        config: row["updates_to_threshold"] for config, row in rows.items()
    }
    # Every configuration reaches the threshold.
    assert all(v is not None for v in reached.values()), reached
    # Updates-to-threshold stays within a 3x band across all worker counts:
    # no degradation from parallelism.
    values = list(reached.values())
    assert max(values) <= 3 * min(values), reached
