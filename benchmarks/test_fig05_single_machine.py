"""Figure 5: single machine — NOMAD vs FPSGD** vs CCD++ on three datasets.

Paper shape: NOMAD reduces RMSE rapidly right from the beginning on every
dataset; FPSGD** is the closest competitor; CCD++'s feature-wise passes
start slower (and on Hugewiki its solution quality lags).
"""

from __future__ import annotations

_THRESHOLDS = {"netflix": 0.30, "yahoo": 0.80, "hugewiki": 0.30}


def test_fig05(run_figure):
    result = run_figure("fig05")
    for dataset in ("netflix", "yahoo", "hugewiki"):
        nomad = result.series[f"{dataset}/NOMAD"]
        fpsgd = result.series[f"{dataset}/FPSGD**"]
        ccd = result.series[f"{dataset}/CCD++"]
        threshold = _THRESHOLDS[dataset]

        # Every SGD method must actually converge.
        assert nomad.final_rmse() < threshold
        assert fpsgd.final_rmse() < threshold

        # NOMAD reaches the threshold no later than CCD++ does (CCD++ may
        # not reach it at all inside the window).
        nomad_time = nomad.time_to_rmse(threshold)
        ccd_time = ccd.time_to_rmse(threshold)
        assert nomad_time is not None
        assert ccd_time is None or nomad_time <= ccd_time

        # And NOMAD is competitive with FPSGD** (within 2x either way).
        fpsgd_time = fpsgd.time_to_rmse(threshold)
        assert fpsgd_time is not None
        assert nomad_time <= 2.0 * fpsgd_time
