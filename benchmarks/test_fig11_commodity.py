"""Figure 11: commodity (1 Gb/s) cluster — NOMAD vs DSGD vs DSGD++ vs CCD++.

Paper shape: NOMAD outperforms everywhere, and — unlike the HPC tie of
Figure 8 — now wins clearly on Yahoo! Music too, despite computing on only
2 of 4 cores (the other two are communication threads, §5.4).
"""

from __future__ import annotations

_THRESHOLDS = {"netflix": 0.30, "yahoo": 0.80, "hugewiki": 0.30}


def test_fig11(run_figure):
    result = run_figure("fig11")
    for dataset in ("netflix", "yahoo", "hugewiki"):
        threshold = _THRESHOLDS[dataset]
        nomad_time = result.series[f"{dataset}/NOMAD"].time_to_rmse(threshold)
        assert nomad_time is not None, dataset
        for competitor in ("DSGD", "DSGD++", "CCD++"):
            other = result.series[f"{dataset}/{competitor}"].time_to_rmse(
                threshold
            )
            assert other is None or nomad_time <= other * 1.1, (
                dataset, competitor)
