"""Figure 14 (Appendix B): NOMAD across latent dimensions.

Scaled shape: the surrogate plants rank-4 truth, so k=2 underfits (elevated
floor) while k >= 4 reaches the noise floor; larger k costs more per update
so per-second convergence slows — the capacity/cost trade-off of the paper.
"""

from __future__ import annotations


def test_fig14(run_figure):
    result = run_figure("fig14")
    floors = {row["k"]: row["best_rmse"] for row in result.tables["dimension"]}

    # k=2 underfits the rank-4 planted truth.
    assert floors[2] > 1.5 * floors[8]
    # Sufficient capacity reaches a similar floor for k in {4, 8, 16}.
    assert floors[4] < 0.5
    assert floors[8] < 0.5

    # Cost scales with k: fewer updates fit in the same window at k=16.
    updates = {row["k"]: row["updates"] for row in result.tables["dimension"]}
    assert updates[16] < updates[4]
