"""Shared machinery for the figure-reproduction benchmarks.

Each benchmark file regenerates one table/figure of the paper via the
experiment registry, at a scale controlled by the ``REPRO_BENCH_SCALE``
environment variable (default ``"small"``; set ``tiny`` for a fast smoke
pass or ``medium`` for cleaner curves).

Every run's full ASCII report is saved under ``results/`` so the numbers
cited in EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.figures import run_experiment
from repro.experiments.report import render_result

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def write_bench_json(path: str, payload: dict) -> None:
    """Write one BENCH payload deterministically.

    Keys are sorted and a trailing newline is emitted, so regenerating an
    unchanged benchmark yields a byte-identical file — ``git diff`` on
    ``results/*.json`` then shows only genuine measurement changes.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_scale() -> str:
    """Benchmark scale preset from the environment."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture
def bench_env():
    """(results_dir, scale) for non-figure micro-benchmarks, so they
    share the figure suite's output location and scale preset."""
    return RESULTS_DIR, bench_scale()


@pytest.fixture
def run_figure(benchmark):
    """Run one registered experiment under pytest-benchmark, save report."""

    def runner(experiment_id: str, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": bench_scale(), "seed": seed},
            rounds=1,
            iterations=1,
        )
        report = render_result(result)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report)
        print()
        print(report)
        return result

    return runner


def threshold_time(result, series_key):
    """time_to_rmse helper reading a series by label."""
    return result.series[series_key]
