"""Figure 20 (Appendix E): NOMAD vs DSGD vs CCD++ across the lambda grid.

Paper shape: the SGD methods (NOMAD, DSGD) behave similarly as lambda
varies; CCD++'s greedy strategy overfits at small lambda; NOMAD stays
competitive with the better of the other two at every lambda.
"""

from __future__ import annotations

_THRESHOLD = 0.30


def test_fig20(run_figure):
    result = run_figure("fig20")
    for lambda_ in (0.0025, 0.01, 0.04):
        nomad = result.series[f"lambda={lambda_}/NOMAD"]
        dsgd = result.series[f"lambda={lambda_}/DSGD"]
        ccd = result.series[f"lambda={lambda_}/CCD++"]

        nomad_time = nomad.time_to_rmse(_THRESHOLD)
        assert nomad_time is not None, lambda_

        # NOMAD is competitive with the best competitor (within 1.5x).
        competitor_times = [
            t
            for t in (dsgd.time_to_rmse(_THRESHOLD), ccd.time_to_rmse(_THRESHOLD))
            if t is not None
        ]
        if competitor_times:
            assert nomad_time <= 1.5 * min(competitor_times), lambda_

    # At the largest lambda the problem is over-regularized for everyone:
    # just require NOMAD's best RMSE to be no worse than DSGD's by >10%.
    heavy_nomad = result.series["lambda=0.16/NOMAD"].best_rmse()
    heavy_dsgd = result.series["lambda=0.16/DSGD"].best_rmse()
    assert heavy_nomad <= heavy_dsgd * 1.1
