"""Table 1: hyperparameters per dataset (paper values + surrogate tuning)."""

from __future__ import annotations


def test_table1(run_figure):
    result = run_figure("table1")
    rows = result.tables["hyperparameters"]
    assert {row["dataset"] for row in rows} == {"netflix", "yahoo", "hugewiki"}
    netflix = next(row for row in rows if row["dataset"] == "netflix")
    # The paper's published Netflix setting (Table 1).
    assert netflix["paper_k"] == 100
    assert netflix["paper_lambda"] == 0.05
    assert netflix["paper_alpha"] == 0.012
    assert netflix["paper_beta"] == 0.05
    hugewiki = next(row for row in rows if row["dataset"] == "hugewiki")
    assert hugewiki["paper_beta"] == 0.0
