"""Figures 15-17 (Appendix C): NOMAD machine scaling on commodity hardware.

Paper shape: same pattern as the HPC scaling (Figs 9-10) but on the slow
network — linear-ish on Netflix/Hugewiki, degraded per-worker throughput on
Yahoo! Music.
"""

from __future__ import annotations


def test_fig15_17(run_figure):
    result = run_figure("fig15_17")

    for dataset in ("netflix", "hugewiki"):
        totals = {
            machines: result.series[
                f"{dataset}/machines={machines}"
            ].total_updates()
            for machines in (1, 2, 4, 8)
        }
        assert totals[8] > 3 * totals[1], dataset

    yahoo = {
        row["config"]: row["updates_per_worker_per_sec"]
        for row in result.tables["throughput_yahoo"]
    }
    assert yahoo[8] < yahoo[1]

    for label, trace in result.series.items():
        assert trace.final_rmse() < trace.records[0].rmse, label
