"""Benchmark: the streaming subsystem vs retraining from scratch.

Replays a MovieLens-shaped synthetic stream (warm-up prefix + shuffled
arrival tail, with held-out users/items first seen mid-stream) through
``repro.fit_stream`` and records to ``results/streaming.json``:

* **ingestion throughput** — arrivals/sec end-to-end (prequential
  scoring + fold-in + cadence training + snapshot rotation);
* **freshness cost** — mean snapshot-rotation latency against the wall
  time of a full static retrain on the same total data.  Rotation is a
  factor copy, so serving a fresh model must be >= 10x cheaper than
  retraining (asserted);
* **accuracy** — the streamed model's RMSE on the grown dataset within
  5% of the static retrain at the same total sweep budget (asserted),
  plus the prequential trace summary.

This file is the baseline every future freshness-latency change (multi-
host transports, GPU kernels) is judged against.  Scale via
``REPRO_BENCH_SCALE`` (``tiny`` for smoke passes).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import write_bench_json

from repro.api import fit_stream
from repro.config import HyperParams, RunConfig
from repro.datasets.synthetic import SyntheticSpec, make_low_rank
from repro.linalg.objective import test_rmse as rmse_of
from repro.rng import RngFactory
from repro.stream import DynamicNomad, ReplayStream

SEED = 0
N_WORKERS = 2

#: MovieLens-shaped problem per scale: (users, items, density, k, lambda,
#: train_every, final_epochs).  "MovieLens-shaped" = hundreds-to-thousands
#: of users, a few hundred items, a few percent observed; densities are
#: kept high enough that held-out generalization (the prequential metric)
#: is meaningful at the fitted k.
_SCALES = {
    "tiny": (200, 100, 0.20, 4, 0.05, 50, 15),
    "small": (400, 200, 0.15, 8, 0.05, 50, 25),
    "medium": (900, 400, 0.05, 8, 0.02, 50, 30),
}


def test_stream_engine(bench_env):
    """Record streaming throughput/freshness/accuracy and sanity-check."""
    results_dir, scale = bench_env
    users, items, density, k, lambda_, train_every, final_epochs = (
        _SCALES.get(scale, _SCALES["small"])
    )
    hyper = HyperParams(k=k, lambda_=lambda_, alpha=0.1, beta=0.01)
    warmup_epochs = 5

    spec = SyntheticSpec(
        n_rows=users, n_cols=items, rank=4, density=density, noise=0.1
    )
    full = make_low_rank(spec, RngFactory(SEED).stream("stream-bench"))
    stream = ReplayStream(
        full,
        warmup_fraction=0.5,
        holdout_rows=max(2, users // 50),
        holdout_cols=max(1, items // 100),
        seed=SEED,
    )

    result = fit_stream(
        stream,
        hyper=hyper,
        run=RunConfig(seed=SEED),
        n_workers=N_WORKERS,
        warmup_epochs=warmup_epochs,
        train_every=train_every,
        epochs_per_train=1,
        final_epochs=final_epochs,
        snapshot_every=max(100, stream.n_events // 8),
    )
    combined = result.final.raw.combined()
    dynamic_rmse = rmse_of(result.final.factors, combined)

    # Full static retrain on the same total data: the standard (uncapped)
    # paper-schedule recipe, cold start, same worker count, same total
    # sweep budget as the streamed run.
    sweeps = (
        warmup_epochs + stream.n_events // train_every + final_epochs
    )
    started = time.perf_counter()
    static = DynamicNomad(combined, N_WORKERS, hyper, seed=SEED)
    static.train(sweeps)
    retrain_seconds = time.perf_counter() - started
    static_rmse = rmse_of(static.factors, combined)

    rotation_mean = float(np.mean(result.snapshots.rotation_seconds))
    rotation_speedup = retrain_seconds / rotation_mean
    window = max(1, min(500, result.prequential.scored))

    payload = {
        "benchmark": "stream_engine",
        "scale": scale,
        "seed": SEED,
        "n_workers": N_WORKERS,
        "dataset": {
            "shape": [users, items],
            "nnz": full.nnz,
            "warmup_nnz": stream.warmup.nnz,
            "arrivals": stream.n_events,
            "new_users": result.new_users,
            "new_items": result.new_items,
        },
        "cadence": {
            "warmup_epochs": warmup_epochs,
            "train_every": train_every,
            "final_epochs": final_epochs,
            "total_sweeps": sweeps,
        },
        "throughput": {
            "arrivals_per_sec": round(result.arrivals_per_second, 1),
            "ingest_seconds": round(result.ingest_seconds, 4),
            "train_seconds": round(result.train_seconds, 4),
            "updates": result.final.timing.updates,
        },
        "freshness": {
            "rotation_seconds_mean": rotation_mean,
            "rotations": result.snapshots.rotations,
            "full_retrain_seconds": round(retrain_seconds, 4),
            "rotation_speedup_vs_retrain": round(rotation_speedup, 1),
        },
        "accuracy": {
            "dynamic_rmse": round(dynamic_rmse, 4),
            "static_retrain_rmse": round(static_rmse, 4),
            "ratio": round(dynamic_rmse / static_rmse, 4),
            "prequential_rmse": round(result.prequential.rmse(), 4),
            "prequential_windowed_rmse": round(
                result.prequential.windowed_rmse(window), 4
            ),
            "prequential_cold": result.prequential.cold,
        },
    }
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "streaming.json")
    write_bench_json(path, payload)

    print()
    print(
        f"stream: {stream.n_events:,} arrivals at "
        f"{result.arrivals_per_second:,.0f}/s "
        f"({result.new_users} new users, {result.new_items} new items)"
    )
    print(
        f"freshness: rotation {rotation_mean * 1e3:.2f} ms vs retrain "
        f"{retrain_seconds:.2f} s -> {rotation_speedup:,.0f}x cheaper"
    )
    print(
        f"accuracy: streamed {dynamic_rmse:.4f} vs static retrain "
        f"{static_rmse:.4f} (ratio {dynamic_rmse / static_rmse:.3f}); "
        f"prequential {result.prequential.rmse():.4f} overall, "
        f"{result.prequential.windowed_rmse(window):.4f} last {window}"
    )

    assert result.arrivals == stream.n_events
    assert result.arrivals_per_second > 0
    # Acceptance: serving freshness is at least 10x cheaper than a full
    # retrain, and the streamed model converges to within 5% of the
    # static retrain on the same total data.
    assert rotation_speedup >= 10.0
    assert dynamic_rmse <= static_rmse * 1.05
