"""Ablation benches for the design choices DESIGN.md calls out.

* jitter — isolates the curse of the last reducer (§4.1): DSGD degrades
  with compute noise, NOMAD does not.
* hybrid — intra-machine circulation (§3.4) cuts network traffic per
  useful update by ~the core count.
* balance — dynamic load balancing (§3.3) beats uniform routing when one
  machine is a straggler.
"""

from __future__ import annotations

_NETFLIX_THRESHOLD = 0.30


def test_ablation_jitter(run_figure):
    result = run_figure("ablation_jitter")

    def time_to(jitter, algo):
        return result.series[f"jitter={jitter}/{algo}"].time_to_rmse(
            _NETFLIX_THRESHOLD
        )

    # Both algorithms converge on the ideal cluster.
    assert time_to(0.0, "NOMAD") is not None
    assert time_to(0.0, "DSGD") is not None

    # DSGD's slowdown from jitter exceeds NOMAD's (relative to their own
    # jitter-free runs).
    nomad_ratio = time_to(0.6, "NOMAD") / time_to(0.0, "NOMAD")
    dsgd_ratio = time_to(0.6, "DSGD") / time_to(0.0, "DSGD")
    assert dsgd_ratio > nomad_ratio


def test_ablation_hybrid(run_figure):
    result = run_figure("ablation_hybrid")
    rows = {row["circulate"]: row for row in result.tables["comparison"]}
    # Circulation multiplies useful work per network hop.
    assert (
        rows[True]["updates_per_network_hop"]
        > 2 * rows[False]["updates_per_network_hop"]
    )
    # Both configurations converge.
    for flag in (True, False):
        trace = result.series[f"circulate={flag}"]
        assert trace.final_rmse() < trace.records[0].rmse


def test_ablation_balance(run_figure):
    result = run_figure("ablation_balance")
    uniform = result.series["uniform"]
    balanced = result.series["least-queue"]
    # Load balancing routes work away from the straggler: more updates in
    # the same window and no worse a final solution.
    assert balanced.total_updates() >= uniform.total_updates()
    assert balanced.final_rmse() <= uniform.final_rmse() * 1.1
