"""Micro-benchmark: telemetry overhead on column-kernel throughput.

Times the fused column-batch kernel three ways — bare (no
instrumentation at all), disabled (the substrates' ``if rec is not
None`` guard with ``rec = None``), and enabled (a live
:class:`~repro.telemetry.Recorder` stamping one SPAN_KERNEL per batch
plus the updates/batches counters, exactly the sites
``runtime/threaded.py`` executes per drained burst) — and records the
throughput ratios to ``results/telemetry_overhead.json``.

The acceptance bar of the telemetry work: disabled instrumentation
costs <= 2% and enabled costs <= 10% of bare column-kernel throughput.

Measurement: per-call durations with the three variants interleaved
call-by-call, summarized by the median, best ratio over a few trials.
Shared-host noise (CPU contention, frequency scaling) shows 30-50%
spread on wall-clock *windows* here, which would drown a 2% bar; the
interleaved per-call median is robust to contention spikes because a
spike lands on single calls of every variant alike and the median
ignores it.

Run with the rest of the benchmark suite; scale via
``REPRO_BENCH_SCALE`` (``tiny`` shortens the sample count).
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from conftest import write_bench_json

from repro.linalg.backends import cext_available, get_backend
from repro.linalg.factors import FactorPair
from repro.telemetry import C_BATCHES, C_UPDATES, SPAN_KERNEL, Recorder, clock

K = 8  # smallest production dim = fastest kernel = worst-case overhead
N_USERS = 400
NNZ = 256
BATCH_COLS = 8
ALPHA, BETA, LAMBDA = 0.012, 0.05, 0.05

#: Interleaved calls per variant per trial.
_CALLS = {"tiny": 50, "small": 300, "medium": 1000}
TRIALS = 3

#: Acceptance floors, as fractions of bare throughput.
DISABLED_FLOOR = 0.98
ENABLED_FLOOR = 0.90


def _batch_fixture(backend):
    rng = np.random.default_rng(K)
    pair = FactorPair(
        rng.random((N_USERS, K)) / np.sqrt(K),
        rng.random((max(NNZ // 4, 2), K)) / np.sqrt(K),
    )
    users = rng.integers(0, N_USERS, size=NNZ)
    vals = rng.random(NNZ) * 4.0
    w, h = backend.make_store(pair)
    if isinstance(w, list):
        users, vals = users.tolist(), vals.tolist()
        counts = [0] * NNZ
    else:
        counts = np.zeros(NNZ, np.int64)
    per_col = NNZ // BATCH_COLS
    bounds = [(j * per_col, (j + 1) * per_col) for j in range(BATCH_COLS)]
    batch_h = [backend.row(h, j % (NNZ // 4)) for j in range(BATCH_COLS)]
    return (
        w,
        batch_h,
        [users[lo:hi] for lo, hi in bounds],
        [vals[lo:hi] for lo, hi in bounds],
        [counts[lo:hi] for lo, hi in bounds],
    )


def _variants(backend):
    # Each variant gets its own identically-seeded fixture: the kernel
    # mutates factors and step-schedule counts in place, so sharing one
    # store would hand later variants different numerical state.
    def bare():
        w, batch_h, batch_users, batch_vals, batch_counts = _batch_fixture(
            backend
        )

        def run_once():
            return backend.process_column_batch(
                w, batch_h, batch_users, batch_vals, batch_counts,
                ALPHA, BETA, LAMBDA,
            )

        return run_once

    def instrumented(rec):
        w, batch_h, batch_users, batch_vals, batch_counts = _batch_fixture(
            backend
        )
        # The exact shape of the substrates' hot-loop sites: a
        # None-guarded clock stamp before the kernel, a None-guarded
        # span + counters after.
        def run_once():
            if rec is not None:
                started = clock()
            n = backend.process_column_batch(
                w, batch_h, batch_users, batch_vals, batch_counts,
                ALPHA, BETA, LAMBDA,
            )
            if rec is not None:
                rec.span(SPAN_KERNEL, started, clock() - started, n)
                rec.add(C_UPDATES, n)
                rec.add(C_BATCHES)
            return n

        return run_once

    return {
        "bare": bare(),
        "disabled": instrumented(None),
        "enabled": instrumented(Recorder(worker_id=0)),
    }


def _median_call_seconds(variants, calls: int) -> dict[str, float]:
    """Interleave one call of each variant per round; median per-call
    time per variant."""
    durations = {name: [] for name in variants}
    for _ in range(calls):
        for name, fn in variants.items():
            started = time.perf_counter()
            fn()
            durations[name].append(time.perf_counter() - started)
    return {
        name: statistics.median(samples)
        for name, samples in durations.items()
    }


def test_telemetry_overhead(bench_env):
    results_dir, scale = bench_env
    calls = _CALLS.get(scale, 300)
    backends = ["numpy"] + (["cext"] if cext_available() else [])

    rows = []
    for name in backends:
        variants = _variants(get_backend(name))
        for fn in variants.values():
            fn()  # warm-up
        # Overhead is an upper bound, so the *best* observed ratio over
        # a few trials is the honest estimate: residual noise only ever
        # inflates the apparent cost.
        best = {"disabled": 0.0, "enabled": 0.0}
        bare_seconds = None
        for _ in range(TRIALS):
            medians = _median_call_seconds(variants, calls)
            bare_seconds = medians["bare"]
            for variant in best:
                best[variant] = max(
                    best[variant], medians["bare"] / medians[variant]
                )
        rows.append(
            {
                "backend": name,
                "bare_updates_per_sec": round(NNZ / bare_seconds, 1),
                "disabled_ratio": round(min(best["disabled"], 1.0), 4),
                "enabled_ratio": round(min(best["enabled"], 1.0), 4),
            }
        )

    write_bench_json(
        os.path.join(results_dir, "telemetry_overhead.json"),
        {
            "benchmark": "telemetry_overhead",
            "unit": "fraction_of_bare_throughput",
            "scale": scale,
            "k": K,
            "nnz": NNZ,
            "batch_cols": BATCH_COLS,
            "disabled_floor": DISABLED_FLOOR,
            "enabled_floor": ENABLED_FLOOR,
            "results": rows,
        },
    )

    print()
    print(f"{'backend':>8} {'bare upd/s':>12} {'disabled':>9} {'enabled':>9}")
    for row in rows:
        print(
            f"{row['backend']:>8} {row['bare_updates_per_sec']:>12,.0f}"
            f" {row['disabled_ratio']:>9.2%} {row['enabled_ratio']:>9.2%}"
        )

    for row in rows:
        assert row["disabled_ratio"] >= DISABLED_FLOOR, (
            f"{row['backend']}: disabled telemetry costs "
            f"{1 - row['disabled_ratio']:.1%} of bare throughput "
            f"(bar: {1 - DISABLED_FLOOR:.0%})"
        )
        assert row["enabled_ratio"] >= ENABLED_FLOOR, (
            f"{row['backend']}: enabled telemetry costs "
            f"{1 - row['enabled_ratio']:.1%} of bare throughput "
            f"(bar: {1 - ENABLED_FLOOR:.0%})"
        )
