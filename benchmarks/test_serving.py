"""Benchmark: the HTTP recommendation service under concurrent load.

Starts an in-process :class:`repro.RecommendationService` on an
ephemeral port and drives it with keep-alive ``http.client`` workers:
read clients alternating ``GET /recommend`` and ``GET /predict`` while
ingest clients POST fresh rating batches that the background trainer
folds in (rotating serving snapshots mid-flight).  Records to
``results/serving.json``:

* **throughput** — read requests/sec end-to-end over the loaded window;
* **latency** — per-request p50/p99 in milliseconds, reads and ingest
  batches separately;
* **consistency** — every response a success status even while
  snapshots rotate underneath the readers (asserted), plus the request
  cache hit rate and the snapshot sequence reached.

Scale via ``REPRO_BENCH_SCALE`` (``tiny`` for smoke passes).
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import numpy as np

from conftest import write_bench_json

from repro.config import HyperParams
from repro.datasets.ratings import RatingMatrix
from repro.serve import RecommendationService, ServiceConfig

SEED = 0

#: Per scale: (users, items, warmup nnz, read clients, requests per read
#: client, ingest clients, batches per ingest client, ratings per batch).
_SCALES = {
    "tiny": (120, 60, 1200, 4, 100, 1, 5, 20),
    "small": (300, 150, 6000, 8, 300, 2, 10, 40),
    "medium": (600, 300, 24000, 12, 600, 3, 20, 60),
}


def _make_warmup(users: int, items: int, nnz: int) -> RatingMatrix:
    rng = np.random.default_rng(SEED)
    flat = rng.choice(users * items, size=nnz, replace=False)
    rows, cols = np.divmod(flat, items)
    return RatingMatrix(
        users, items, rows, cols, rng.normal(0.0, 1.0, size=nnz)
    )


def _fresh_batches(warmup, n_batches, batch_size, rng):
    """Rating batches over pairs absent from the warm-up matrix."""
    seen = set(zip(warmup.rows.tolist(), warmup.cols.tolist()))
    free = [
        (u, i)
        for u in range(warmup.n_rows)
        for i in range(warmup.n_cols)
        if (u, i) not in seen
    ]
    needed = n_batches * batch_size
    if needed > len(free):
        raise AssertionError("warm-up matrix too dense for ingest volume")
    picked = rng.choice(len(free), size=needed, replace=False)
    batches = []
    for b in range(n_batches):
        batches.append(
            [
                {
                    "user": free[j][0],
                    "item": free[j][1],
                    "value": float(rng.normal(0.0, 1.0)),
                }
                for j in picked[b * batch_size : (b + 1) * batch_size]
            ]
        )
    return batches


class _Worker:
    """One keep-alive client; records (latency_seconds, status) pairs."""

    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self.samples: list[tuple[float, int]] = []

    def run(self, requests):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            for method, path, body in requests:
                started = time.perf_counter()
                conn.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"}
                    if body
                    else {},
                )
                response = conn.getresponse()
                response.read()
                self.samples.append(
                    (time.perf_counter() - started, response.status)
                )
        finally:
            conn.close()


def _percentile_ms(samples, q: float) -> float:
    latencies = np.array([s[0] for s in samples])
    return round(float(np.percentile(latencies, q)) * 1e3, 3)


def test_serving_load(bench_env):
    """Record serving throughput/latency under concurrent ingest."""
    results_dir, scale = bench_env
    users, items, nnz, n_readers, per_reader, n_ingesters, n_batches, per_batch = (
        _SCALES.get(scale, _SCALES["small"])
    )
    warmup = _make_warmup(users, items, nnz)
    rng = np.random.default_rng(SEED + 1)

    config = ServiceConfig(
        warmup_epochs=3,
        train_every=per_batch,
        snapshot_every=2 * per_batch,
        final_epochs=1,
        cache_capacity=4 * users,
    )
    service = RecommendationService(warmup, HyperParams(k=8), config).start()
    try:
        host, port = "127.0.0.1", service.port
        base_seq = service.store.latest.seq

        read_plans = []
        for r in range(n_readers):
            plan = []
            for i in range(per_reader):
                user = int(rng.integers(users))
                if i % 2 == 0:
                    plan.append(("GET", f"/recommend?user={user}&n=10", None))
                else:
                    item = int(rng.integers(items))
                    plan.append(
                        ("GET", f"/predict?user={user}&item={item}", None)
                    )
            read_plans.append(plan)

        ingest_plans = [
            [
                ("POST", "/ratings", json.dumps({"ratings": batch}))
                for batch in _fresh_batches(warmup, n_batches, per_batch, rng)
            ]
            for _ in range(n_ingesters)
        ]

        readers = [_Worker(host, port) for _ in range(n_readers)]
        ingesters = [_Worker(host, port) for _ in range(n_ingesters)]
        threads = [
            threading.Thread(target=w.run, args=(plan,))
            for w, plan in (
                list(zip(readers, read_plans))
                + list(zip(ingesters, ingest_plans))
            )
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        service.stop()

    read_samples = [s for w in readers for s in w.samples]
    ingest_samples = [s for w in ingesters for s in w.samples]
    requests_per_sec = len(read_samples) / elapsed
    final_seq = service.store.latest.seq
    stats = service.cache.stats_payload()

    payload = {
        "benchmark": "serving",
        "scale": scale,
        "seed": SEED,
        "dataset": {"shape": [users, items], "warmup_nnz": nnz},
        "load": {
            "read_clients": n_readers,
            "read_requests": len(read_samples),
            "ingest_clients": n_ingesters,
            "ingest_batches": len(ingest_samples),
            "ratings_per_batch": per_batch,
            "elapsed_seconds": round(elapsed, 4),
        },
        "throughput": {"read_requests_per_sec": round(requests_per_sec, 1)},
        "latency_ms": {
            "read_p50": _percentile_ms(read_samples, 50),
            "read_p99": _percentile_ms(read_samples, 99),
            "ingest_p50": _percentile_ms(ingest_samples, 50),
            "ingest_p99": _percentile_ms(ingest_samples, 99),
        },
        "consistency": {
            "snapshot_seq_start": base_seq,
            "snapshot_seq_end": final_seq,
            "rotations_under_load": final_seq - base_seq,
            "request_cache_hit_rate": stats["hit_rate"],
            "trainer_error": service.trainer_error,
        },
    }
    os.makedirs(results_dir, exist_ok=True)
    write_bench_json(os.path.join(results_dir, "serving.json"), payload)

    print()
    print(
        f"serving: {len(read_samples):,} reads at {requests_per_sec:,.0f}/s "
        f"(p50 {payload['latency_ms']['read_p50']} ms, "
        f"p99 {payload['latency_ms']['read_p99']} ms)"
    )
    print(
        f"ingest: {len(ingest_samples)} batches x {per_batch} ratings "
        f"(p50 {payload['latency_ms']['ingest_p50']} ms); snapshot seq "
        f"{base_seq} -> {final_seq} under load"
    )

    # Acceptance: every read succeeded and every batch was accepted even
    # while the trainer rotated snapshots underneath the readers.
    assert all(status == 200 for _, status in read_samples)
    assert all(status == 202 for _, status in ingest_samples)
    assert service.trainer_error is None
    # The trainer actually folded served traffic in under load.
    assert final_seq > base_seq
    # Modest floor: a local stdlib server should clear this easily.
    assert requests_per_sec >= 25.0
