"""Figure 8: HPC cluster — NOMAD vs DSGD vs DSGD++ vs CCD++.

Paper shape: on Netflix and Hugewiki NOMAD converges faster than all
baselines; on Yahoo! Music the methods are close to tied because network
communication dominates (only ~404 ratings per item split over machines).
"""

from __future__ import annotations

_THRESHOLDS = {"netflix": 0.30, "yahoo": 0.80, "hugewiki": 0.30}


def test_fig08(run_figure):
    result = run_figure("fig08")

    for dataset in ("netflix", "hugewiki"):
        threshold = _THRESHOLDS[dataset]
        nomad_time = result.series[f"{dataset}/NOMAD"].time_to_rmse(threshold)
        assert nomad_time is not None
        for competitor in ("DSGD", "DSGD++", "CCD++"):
            other = result.series[f"{dataset}/{competitor}"].time_to_rmse(
                threshold
            )
            # NOMAD is the fastest to the threshold (ties forgiven by 10%).
            assert other is None or nomad_time <= other * 1.1, (
                dataset, competitor)

    # Yahoo: the SGD methods are nearly tied (within 2x of each other).
    yahoo_times = {}
    for algo in ("NOMAD", "DSGD", "DSGD++"):
        reached = result.series[f"yahoo/{algo}"].time_to_rmse(
            _THRESHOLDS["yahoo"]
        )
        assert reached is not None, algo
        yahoo_times[algo] = reached
    assert max(yahoo_times.values()) < 2.5 * min(yahoo_times.values())
