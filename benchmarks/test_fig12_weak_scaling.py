"""Figure 12: dataset size and machine count grow together (§5.5).

Paper shape: NOMAD outperforms on every configuration and its comparative
advantage grows with scale; DSGD++ is competitive at small scale.
"""

from __future__ import annotations


def test_fig12(run_figure):
    result = run_figure("fig12")
    for machines in (2, 4, 8):
        summaries = {
            row["algorithm"]: row
            for row in result.tables[f"summary_machines={machines}"]
        }
        nomad_final = summaries["NOMAD"]["final_rmse"]
        # NOMAD converges on every configuration...
        assert nomad_final < 1.0, machines
        # ...and is never beaten by a wide margin by any baseline.
        for algo in ("DSGD", "DSGD++", "CCD++"):
            assert nomad_final <= summaries[algo]["final_rmse"] * 1.25, (
                machines, algo)

    # Comparative advantage at the largest scale: NOMAD strictly best.
    final_summaries = {
        row["algorithm"]: row["final_rmse"]
        for row in result.tables["summary_machines=8"]
    }
    best_baseline = min(
        final_summaries[a] for a in ("DSGD", "DSGD++", "CCD++")
    )
    assert final_summaries["NOMAD"] <= best_baseline * 1.05
