"""Figures 6-7: NOMAD core scaling on one machine.

Paper shape: average throughput per core stays roughly flat as cores grow
(near-linear scaling, §5.2), and on Yahoo! Music convergence per *update*
improves with more cores (smaller blocks mean fresher item parameters).
"""

from __future__ import annotations


def test_fig06_07(run_figure):
    result = run_figure("fig06_07")

    for dataset in ("netflix", "yahoo", "hugewiki"):
        throughput = {
            row["config"]: row["updates_per_worker_per_sec"]
            for row in result.tables[f"throughput_{dataset}"]
        }
        # Near-linear scaling: per-worker throughput within a 4x band
        # across 2 -> 8 cores (the paper sees ~2x degradation at worst).
        values = list(throughput.values())
        assert max(values) < 4 * min(values), dataset

        # Total work grows with cores.
        totals = {
            cores: result.series[f"{dataset}/cores={cores}"].total_updates()
            for cores in (2, 4, 8)
        }
        assert totals[8] > totals[2] * 1.8, dataset

    # Everything converges at every core count.
    for label, trace in result.series.items():
        assert trace.final_rmse() < trace.records[0].rmse, label
