"""Table 2: dataset statistics — paper scale and measured surrogates."""

from __future__ import annotations


def test_table2(run_figure):
    result = run_figure("table2")
    declared = {row["name"]: row for row in result.tables["declared"]}
    # Paper's Table 2 entries, verbatim.
    assert declared["netflix"]["paper_nnz"] == 99_072_112
    assert declared["yahoo"]["paper_nnz"] == 252_800_275
    assert declared["hugewiki"]["paper_nnz"] == 2_736_496_604

    measured = {row["dataset"]: row for row in result.tables["measured"]}
    # Shape preservation: ratings-per-item ordering yahoo << netflix << hugewiki.
    assert (
        measured["yahoo"]["ratings_per_item"]
        < measured["netflix"]["ratings_per_item"]
        < measured["hugewiki"]["ratings_per_item"]
    )
    # Generated surrogates land near their declared statistics.
    for name in ("netflix", "yahoo", "hugewiki"):
        expected = declared[name]["surrogate_nnz"]
        actual = measured[name]["nnz"]
        assert abs(actual - expected) / expected < 0.1
